#include "net/ingest.hpp"

#include <atomic>
#include <chrono>

#include "obs/flight_recorder.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_stream.hpp"
#include "util/string_util.hpp"

namespace netobs::net {

namespace {

/// Pipeline-global series (the per-shard ones live on each Worker).
struct IngestMetrics {
  obs::Counter& delivered;
  obs::Counter& dropped;
  obs::Gauge& queue_depth;
  obs::Gauge& interned;
  obs::RateGauge event_rate;

  static IngestMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static IngestMetrics m{
        reg.counter("netobs_ingest_delivered_total",
                    "Interned events handed to the profiler sink"),
        reg.counter("netobs_ingest_dropped_total",
                    "Events discarded by the ring under drop-oldest"),
        reg.gauge("netobs_ingest_queue_depth",
                  "Events buffered in the hand-off ring"),
        reg.gauge("netobs_ingest_interned_hostnames",
                  "Distinct hostnames in the intern pool"),
        obs::RateGauge(reg, "netobs_ingest_events_per_second",
                       "Events delivered per second (sliding window)"),
    };
    return m;
  }
};

void add_observer_stats(ObserverStats& into, const ObserverStats& from) {
  into.packets += from.packets;
  into.flows += from.flows;
  into.events += from.events;
  into.no_sni += from.no_sni;
  into.not_tls += from.not_tls;
  into.incomplete += from.incomplete;
  into.evicted += from.evicted;
  into.idle_evicted += from.idle_evicted;
  into.deduped += from.deduped;
}

}  // namespace

// ---------------------------------------------------------------- EventRing

EventRing::EventRing(std::size_t capacity, BackpressurePolicy policy)
    : buf_(capacity == 0 ? 1 : capacity),
      capacity_(capacity == 0 ? 1 : capacity),
      policy_(policy) {}

std::size_t EventRing::push(std::span<const InternedEvent> batch,
                            double* stalled_seconds) {
  std::size_t dropped_now = 0;
  std::size_t i = 0;
  double stalled = 0.0;
  std::unique_lock<std::mutex> lk(mutex_);
  while (i < batch.size()) {
    if (closed_) {
      dropped_now += batch.size() - i;
      dropped_ += batch.size() - i;
      break;
    }
    if (count_ == capacity_) {
      if (policy_ == BackpressurePolicy::kBlock) {
        // The clock is read only on the (already slow) blocked path.
        auto wait_start = std::chrono::steady_clock::now();
        not_full_.wait(lk, [&] { return count_ < capacity_ || closed_; });
        stalled += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wait_start)
                       .count();
        continue;
      }
      // kDropOldest: make room for as much of the remainder as fits.
      std::size_t need = std::min(batch.size() - i, capacity_);
      head_ = (head_ + need) % capacity_;
      count_ -= need;
      dropped_ += need;
      dropped_now += need;
    }
    while (i < batch.size() && count_ < capacity_) {
      buf_[(head_ + count_) % capacity_] = batch[i++];
      ++count_;
    }
    if (count_ > hwm_) hwm_ = count_;
    not_empty_.notify_one();
  }
  stall_seconds_ += stalled;
  if (stalled_seconds != nullptr) *stalled_seconds = stalled;
  return dropped_now;
}

bool EventRing::drain(std::vector<InternedEvent>& out, std::size_t max) {
  std::unique_lock<std::mutex> lk(mutex_);
  not_empty_.wait(lk, [&] { return count_ > 0 || closed_; });
  std::size_t n = std::min(max, count_);
  for (std::size_t k = 0; k < n; ++k) {
    out.push_back(buf_[(head_ + k) % capacity_]);
  }
  head_ = (head_ + n) % capacity_;
  count_ -= n;
  if (n > 0) not_full_.notify_all();
  return !(closed_ && count_ == 0);
}

void EventRing::close() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t EventRing::size() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return count_;
}

std::uint64_t EventRing::dropped() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return dropped_;
}

std::size_t EventRing::high_watermark() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return hwm_;
}

double EventRing::stall_seconds() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return stall_seconds_;
}

// -------------------------------------------------------------- ShardEngine

ShardEngine::ShardEngine(const IngestOptions& options,
                         std::uint32_t shard_index, util::InternPool& pool)
    : pool_(pool),
      demux_(options.vantage, shard_index,
             static_cast<std::uint32_t>(options.shards == 0 ? 1
                                                            : options.shards)),
      flight_(options.flight),
      shard_index_(shard_index) {
  if (options.sni) {
    sni_.emplace(demux_, stats_, options.sni_options,
                 /*registry_metrics=*/false);
  }
  if (options.dns) {
    dns_.emplace(demux_, stats_, options.dns_options,
                 /*registry_metrics=*/false);
  }
}

void ShardEngine::maybe_record(std::uint32_t user_id,
                               util::InternPool::Id host_id,
                               util::Timestamp timestamp,
                               std::string_view hostname) {
  // The sampling decision keys on (timestamp, hostname bytes) only — never
  // on the shard-layout-dependent ids — so every shard count samples the
  // same events (see flight_recorder.hpp).
  if (!flight_->sampled(timestamp, hostname)) return;
  flight_->record_parse(user_id, host_id, timestamp, shard_index_, hostname);
  sampled_keys_.push_back(
      obs::FlightRecorder::event_key(user_id, host_id, timestamp));
}

void ShardEngine::process(const Packet& packet,
                          std::vector<InternedEvent>& out) {
  if (sni_) {
    if (auto raw = sni_->observe(packet)) {
      util::InternPool::Id host_id = pool_.intern(raw->hostname);
      if (flight_ != nullptr) {
        maybe_record(raw->user_id, host_id, raw->timestamp, raw->hostname);
      }
      out.push_back(InternedEvent{raw->user_id, host_id, raw->timestamp});
    }
  }
  if (dns_) {
    dns_raw_.clear();
    dns_->observe(packet, dns_raw_);
    for (const RawEvent& r : dns_raw_) {
      util::InternPool::Id host_id = pool_.intern(r.hostname);
      if (flight_ != nullptr) {
        maybe_record(r.user_id, host_id, r.timestamp, r.hostname);
      }
      out.push_back(InternedEvent{r.user_id, host_id, r.timestamp});
    }
  }
}

// ------------------------------------------------------------ IngestPipeline

struct IngestPipeline::Worker {
  std::uint32_t index = 0;
  std::unique_ptr<ShardEngine> engine;  ///< worker thread after start

  std::vector<Packet> staging;  ///< producer thread only

  std::mutex mutex;
  std::condition_variable cv;       ///< work arrived / stopping
  std::condition_variable idle_cv;  ///< queue drained and worker idle
  std::deque<std::vector<Packet>> queue;  // guarded by mutex
  bool busy = false;                      // guarded by mutex
  bool stopping = false;                  // guarded by mutex

  // Snapshot published after each batch so stats() never touches the
  // engine a worker thread is mutating.
  ObserverStats published;        // guarded by mutex
  std::size_t published_users = 0;  // guarded by mutex
  std::size_t pending_flows = 0;    // guarded by mutex

  // Registry handles + last-synced copy (worker thread only).
  obs::Counter* m_packets = nullptr;
  obs::Counter* m_events = nullptr;
  obs::Counter* m_flows = nullptr;
  obs::Counter* m_evicted = nullptr;
  obs::Gauge* m_stall = nullptr;
  ObserverStats synced;
  double stall_total = 0.0;  ///< worker thread only

  std::atomic<std::uint64_t> produced{0};  ///< events created pre-ring

  // Engine footprints mirrored after each batch so MemoryAccountant probes
  // (scraping thread) never touch the live engine.
  std::atomic<std::size_t> flow_bytes{0};
  std::atomic<std::size_t> demux_bytes{0};
  std::atomic<std::size_t> users{0};

  std::thread thread;
};

IngestPipeline::IngestPipeline(IngestOptions options, util::InternPool& pool,
                               Sink sink)
    : options_([&] {
        if (options.shards == 0) options.shards = 1;
        if (options.batch_size == 0) options.batch_size = 1;
        return options;
      }()),
      pool_(pool),
      sink_(std::move(sink)),
      ring_(options_.ring_capacity, options_.backpressure) {
  auto& reg = obs::MetricsRegistry::global();
  workers_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    auto w = std::make_unique<Worker>();
    w->index = static_cast<std::uint32_t>(s);
    w->engine = std::make_unique<ShardEngine>(options_, w->index, pool_);
    w->staging.reserve(options_.batch_size);
    if (options_.registry_metrics) {
      obs::Labels labels{{"shard", std::to_string(s)}};
      w->m_packets = &reg.counter("netobs_ingest_packets_total",
                                  "Packets processed by ingest shards",
                                  labels);
      w->m_events = &reg.counter("netobs_ingest_events_total",
                                 "Events produced by ingest shards", labels);
      w->m_flows = &reg.counter("netobs_ingest_flows_total",
                                "Flows tracked by ingest shards", labels);
      w->m_evicted = &reg.counter(
          "netobs_ingest_flows_evicted_total",
          "Flows evicted (cap or idle) by ingest shards", labels);
      w->m_stall = &reg.gauge(
          "netobs_ingest_stall_seconds",
          "Cumulative worker time blocked on a full hand-off ring", labels);
    }
    workers_.push_back(std::move(w));
  }
  if (options_.registry_metrics) register_memory_probes();
  for (auto& w : workers_) {
    w->thread = std::thread([this, &w = *w] { worker_loop(w); });
  }
  consumer_ = std::thread([this] { consumer_loop(); });
}

IngestPipeline::~IngestPipeline() { stop(); }

std::size_t IngestPipeline::shard_of(const Packet& packet, Vantage vantage,
                                     std::size_t shards) {
  if (shards <= 1) return 0;
  // identity_key is already mixed; use high bits so the demux map (low
  // bits) stays independent of the shard choice.
  return static_cast<std::size_t>(
             UserDemux::identity_key(packet, vantage) >> 32) %
         shards;
}

void IngestPipeline::enqueue_staging(Worker& w) {
  if (w.staging.empty()) return;
  {
    std::lock_guard<std::mutex> lk(w.mutex);
    w.queue.push_back(std::move(w.staging));
  }
  w.cv.notify_one();
  w.staging = std::vector<Packet>();
  w.staging.reserve(options_.batch_size);
}

void IngestPipeline::push(const Packet& packet) {
  if (stopped_) return;
  ++pushed_;
  Worker& w =
      *workers_[shard_of(packet, options_.vantage, workers_.size())];
  w.staging.push_back(packet);
  if (w.staging.size() >= options_.batch_size) enqueue_staging(w);
}

void IngestPipeline::push(std::span<const Packet> packets) {
  for (const Packet& p : packets) push(p);
}

void IngestPipeline::sync_worker_metrics(Worker& w) {
  if (w.m_packets == nullptr) return;
  const ObserverStats& s = w.engine->stats();
  w.m_packets->inc(s.packets - w.synced.packets);
  w.m_events->inc(s.events - w.synced.events);
  w.m_flows->inc(s.flows - w.synced.flows);
  w.m_evicted->inc((s.evicted + s.idle_evicted) -
                   (w.synced.evicted + w.synced.idle_evicted));
  w.m_stall->set(w.stall_total);
  w.synced = s;
}

void IngestPipeline::register_memory_probes() {
  auto& acct = obs::MemoryAccountant::global();
  memory_probe_handles_.push_back(acct.add_probe(
      "intern_pool", /*per_user=*/false, [this] { return pool_.bytes(); }));
  memory_probe_handles_.push_back(
      acct.add_probe("flow_tables", /*per_user=*/false, [this] {
        std::uint64_t total = 0;
        for (const auto& w : workers_) {
          total += w->flow_bytes.load(std::memory_order_relaxed);
        }
        return total;
      }));
  memory_probe_handles_.push_back(
      acct.add_probe("user_demux", /*per_user=*/true, [this] {
        std::uint64_t total = 0;
        for (const auto& w : workers_) {
          total += w->demux_bytes.load(std::memory_order_relaxed);
        }
        return total;
      }));
  memory_probe_handles_.push_back(
      acct.add_probe("event_ring", /*per_user=*/false, [this] {
        return std::uint64_t{ring_.capacity()} * sizeof(InternedEvent);
      }));
  user_probe_handle_ = acct.add_user_probe([this] {
    std::uint64_t total = 0;
    for (const auto& w : workers_) {
      total += w->users.load(std::memory_order_relaxed);
    }
    return total;
  });
}

void IngestPipeline::remove_memory_probes() {
  auto& acct = obs::MemoryAccountant::global();
  for (std::uint64_t handle : memory_probe_handles_) {
    acct.remove_probe(handle);
  }
  memory_probe_handles_.clear();
  if (user_probe_handle_ != 0) {
    acct.remove_user_probe(user_probe_handle_);
    user_probe_handle_ = 0;
  }
}

void IngestPipeline::worker_loop(Worker& w) {
  std::vector<Packet> batch;
  std::vector<InternedEvent> events;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(w.mutex);
      w.cv.wait(lk, [&] { return !w.queue.empty() || w.stopping; });
      if (w.queue.empty()) break;  // stopping and drained
      batch = std::move(w.queue.front());
      w.queue.pop_front();
      w.busy = true;
    }
    events.clear();
    for (const Packet& p : batch) w.engine->process(p, events);
    w.produced.fetch_add(events.size(), std::memory_order_release);
    if (!events.empty()) {
      // kEnqueue is stamped *before* the push: per-shard FIFO through the
      // ring mutex then guarantees the consumer's kDequeue stamp follows,
      // and any blocking stall lands in the enqueue→dequeue hop.
      std::vector<std::uint64_t>& keys = w.engine->sampled_keys();
      if (options_.flight != nullptr && !keys.empty()) {
        options_.flight->stamp_keys(obs::FlightHop::kEnqueue, keys);
      }
      keys.clear();
      if (options_.shard_sink) {
        // Shard-affine direct delivery: no ring, no consumer hop, no
        // backpressure loss — the worker *is* the delivery thread.
        options_.shard_sink(w.index, std::span<const InternedEvent>(events));
        delivered_direct_.fetch_add(events.size(), std::memory_order_relaxed);
        if (options_.registry_metrics) {
          IngestMetrics& metrics = IngestMetrics::get();
          metrics.delivered.inc(events.size());
          metrics.event_rate.record(static_cast<double>(events.size()));
          metrics.interned.set(static_cast<double>(pool_.size()));
        }
      } else {
        double stalled = 0.0;
        ring_.push(events, &stalled);
        w.stall_total += stalled;
      }
    }
    sync_worker_metrics(w);
    w.flow_bytes.store(w.engine->flow_memory_bytes(),
                       std::memory_order_relaxed);
    w.demux_bytes.store(w.engine->demux_memory_bytes(),
                        std::memory_order_relaxed);
    w.users.store(w.engine->demux().distinct_users(),
                  std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(w.mutex);
      w.busy = false;
      w.published = w.engine->stats();
      w.published_users = w.engine->demux().distinct_users();
      w.pending_flows = w.engine->pending_flows();
    }
    w.idle_cv.notify_all();
  }
}

void IngestPipeline::consumer_loop() {
  IngestMetrics* metrics =
      options_.registry_metrics ? &IngestMetrics::get() : nullptr;
  std::vector<InternedEvent> out;
  for (;;) {
    out.clear();
    bool alive = ring_.drain(out, 4096);
    if (!out.empty()) {
      if (options_.flight != nullptr) {
        for (const InternedEvent& e : out) {
          options_.flight->stamp(obs::FlightHop::kDequeue, e.user_id,
                                 e.host_id, e.timestamp);
        }
      }
      sink_(std::span<const InternedEvent>(out));
      {
        std::lock_guard<std::mutex> lk(consumer_mutex_);
        delivered_ += out.size();
      }
      consumer_cv_.notify_all();
      if (metrics != nullptr) {
        metrics->delivered.inc(out.size());
        metrics->event_rate.record(static_cast<double>(out.size()));
        metrics->queue_depth.set(static_cast<double>(ring_.size()));
        metrics->interned.set(static_cast<double>(pool_.size()));
        std::uint64_t total_dropped = ring_.dropped();
        std::uint64_t seen = metrics->dropped.value();
        if (total_dropped > seen) metrics->dropped.inc(total_dropped - seen);
      }
    }
    if (!alive) break;
  }
}

void IngestPipeline::flush() {
  if (stopped_) return;
  for (auto& w : workers_) enqueue_staging(*w);
  for (auto& w : workers_) {
    std::unique_lock<std::mutex> lk(w->mutex);
    w->idle_cv.wait(lk, [&] { return w->queue.empty() && !w->busy; });
  }
  // Direct mode: delivery happens on the worker threads, so idle workers
  // means every event has already reached the shard sink.
  if (options_.shard_sink) return;
  std::uint64_t produced = 0;
  for (auto& w : workers_) {
    produced += w->produced.load(std::memory_order_acquire);
  }
  std::unique_lock<std::mutex> lk(consumer_mutex_);
  consumer_cv_.wait(lk, [&] {
    return delivered_ + ring_.dropped() >= produced;
  });
}

void IngestPipeline::stop() {
  if (stopped_) return;
  flush();
  stopped_ = true;
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lk(w->mutex);
      w->stopping = true;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  ring_.close();
  if (consumer_.joinable()) consumer_.join();
  remove_memory_probes();
}

IngestStats IngestPipeline::stats() const {
  IngestStats out;
  out.shards = workers_.size();
  for (const auto& w : workers_) {
    std::lock_guard<std::mutex> lk(w->mutex);
    add_observer_stats(out.observer, w->published);
    out.distinct_users += w->published_users;
  }
  out.pushed = pushed_;
  out.dropped = ring_.dropped();
  out.queue_depth = ring_.size();
  out.queue_hwm = ring_.high_watermark();
  out.stall_seconds = ring_.stall_seconds();
  {
    std::lock_guard<std::mutex> lk(consumer_mutex_);
    out.delivered = delivered_;
  }
  out.delivered += delivered_direct_.load(std::memory_order_relaxed);
  out.distinct_hostnames = pool_.size();
  return out;
}

std::string IngestPipeline::status() const {
  IngestStats s = stats();
  std::size_t pending = 0;
  for (const auto& w : workers_) {
    std::lock_guard<std::mutex> lk(w->mutex);
    pending += w->pending_flows;
  }
  // No "ingest:" prefix: /statusz providers render as "<key>: <line>" and
  // bench::attach_ingest_status already keys this line as "ingest".
  return util::format(
      "shards=%zu pushed=%llu events=%zu delivered=%llu dropped=%llu "
      "queue=%zu/%zu queue_hwm=%zu stall_s=%.3f users=%zu hostnames=%zu "
      "pending_flows=%zu",
      s.shards, static_cast<unsigned long long>(s.pushed), s.observer.events,
      static_cast<unsigned long long>(s.delivered),
      static_cast<unsigned long long>(s.dropped), s.queue_depth,
      ring_.capacity(), s.queue_hwm, s.stall_seconds, s.distinct_users,
      s.distinct_hostnames, pending);
}

}  // namespace netobs::net
