// The ingest_throughput section of --bench-baseline: packets-per-second of
// the legacy single-threaded SniObserver vs the sharded IngestPipeline
// (net/ingest.hpp) on the same synthetic ClientHello corpus, plus heap
// allocations per delivered event on each path.
//
// Two speedups are recorded because they answer different questions:
//   - speedup_measured: wall-clock ST time / wall-clock pipeline time. Only
//     meaningful when the machine has at least `shards` hardware threads;
//     on a smaller box the workers time-slice one core and the number
//     measures the scheduler, not the design.
//   - speedup_ideal: ST time / max per-shard *serial* time, using the same
//     ShardEngine code the workers run. This is the parallel-section bound
//     (Amdahl numerator) of the sharding itself — how evenly identity-key
//     routing splits the work and how much per-packet cost the engine path
//     sheds (no per-packet registry, interned events, open-addressed
//     tables). It is machine-independent, so the >= 3x acceptance floor at
//     >= 4 shards is enforced on every box; the measured speedup is gated
//     only where hardware_concurrency() >= shards (the same scale-gating
//     pattern as ivf_speedup_enforced()).
//
// The corpus is flow-realistic, not adversarial: every flow is a distinct
// 5-tuple whose first segment(s) carry a real serialised ClientHello
// (build_client_hello_record), a quarter of the flows split across two TCP
// segments to exercise reassembly, and users/hostnames repeat with uniform
// popularity so the intern pool sees the hit-dominated regime the paper's
// ~1300-repeats-per-hostname deployment implies.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/alloc_count.hpp"
#include "net/ingest.hpp"
#include "net/observer.hpp"
#include "net/tls.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/memory.hpp"
#include "profile/session.hpp"
#include "util/rng.hpp"

namespace netobs::bench {

struct IngestBaselineOptions {
  std::size_t flows = 150000;    ///< TLS flows in the corpus
  std::size_t shards = 4;        ///< pipeline width under test
  std::size_t users = 512;       ///< distinct senders (MAC-identified)
  std::size_t hostnames = 4096;  ///< distinct SNI values
  std::uint64_t seed = 2021;
  /// Sampling rate of the flight-recorder overhead pass (the shipped
  /// default); 0 skips the pass.
  std::uint64_t flight_sample_every = 1024;
};

struct IngestBaselineResult {
  std::size_t packets = 0;
  std::size_t flows = 0;
  std::size_t shards = 0;
  std::size_t events = 0;  ///< hostname events per full pass
  double st_s = 0.0;                ///< single-threaded SniObserver pass
  double mt_wall_s = 0.0;           ///< sharded pipeline push+flush
  double shard_serial_max_s = 0.0;  ///< slowest shard, run serially
  double shard_serial_sum_s = 0.0;  ///< all shards, run serially
  /// Heap allocations per delivered event; -1 when the counting allocator
  /// is not linked into this binary (see bench/alloc_count.hpp).
  double alloc_per_event_st = -1.0;
  double alloc_per_event_sharded = -1.0;
  std::uint64_t dropped = 0;        ///< pipeline events lost (kBlock: 0)
  bool oneshard_identical = false;  ///< 1-shard pipeline == observer output
  unsigned hardware_threads = 0;

  // Flight-recorder overhead: the same serial 1-shard engine pass timed
  // with tracing off vs sampling 1-in-flight_sample_every (best-of-k min of
  // interleaved reps, so frequency drift hits both sides equally).
  std::uint64_t flight_sample_every = 0;  ///< 0 = pass skipped
  double flight_off_s = 0.0;              ///< recorder detached
  double flight_on_s = 0.0;               ///< recorder attached, sampling
  std::uint64_t flight_sampled = 0;       ///< events the recorder sampled

  // Memory accounting snapshot after the sharded pass has drained into a
  // session store: where the serve path's bytes live at this corpus size.
  obs::MemorySnapshot memory;
  // The interned session store alone (map nodes + slot arenas; the shared
  // intern pool is accounted under the pipeline's own probe).
  std::uint64_t session_store_bytes = 0;
  std::uint64_t session_store_users = 0;

  double st_pps() const {
    return st_s > 0.0 ? static_cast<double>(packets) / st_s : 0.0;
  }
  double mt_pps() const {
    return mt_wall_s > 0.0 ? static_cast<double>(packets) / mt_wall_s : 0.0;
  }
  double speedup_measured() const {
    return mt_wall_s > 0.0 ? st_s / mt_wall_s : 0.0;
  }
  double speedup_ideal() const {
    return shard_serial_max_s > 0.0 ? st_s / shard_serial_max_s : 0.0;
  }

  /// Relative ingest slowdown of the sampling recorder, in percent; 0 when
  /// the pass was skipped. May come out slightly negative on a noisy box —
  /// the gate only cares about the upper bound.
  double flight_overhead_pct() const {
    return flight_off_s > 0.0
               ? (flight_on_s - flight_off_s) / flight_off_s * 100.0
               : 0.0;
  }
  bool flight_overhead_enforced() const { return flight_sample_every != 0; }
  static double flight_overhead_target_pct() { return 2.0; }

  /// Session-store bytes per resident user after the full corpus drained —
  /// the figure the interned store is gated on (absolute ceiling below;
  /// the deque-of-strings seed measured ~23.6 KB/user on this corpus).
  double session_bytes_per_user() const {
    return session_store_users > 0
               ? static_cast<double>(session_store_bytes) /
                     static_cast<double>(session_store_users)
               : 0.0;
  }
  static double session_bytes_per_user_ceiling() { return 8000.0; }

  /// The >= 3x floor is claimed "at >= 4 shards" (ISSUE acceptance); a
  /// narrower pipeline cannot be expected to reach it.
  bool ideal_speedup_enforced() const { return shards >= 4; }
  /// Wall-clock gating: only boxes that can actually run the shards in
  /// parallel are held to the floor.
  bool measured_speedup_enforced() const {
    return ideal_speedup_enforced() && hardware_threads >= shards;
  }
  static double speedup_target() { return 3.0; }
};

namespace ingest_detail {

inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Builds the packet corpus: one ClientHello flow per `flows`, every 4th
/// flow split across two segments, unique 5-tuples throughout, timestamps
/// advancing ~256 flows per sim-second.
inline std::vector<net::Packet> make_corpus(
    const IngestBaselineOptions& opts) {
  util::Pcg32 rng(opts.seed, 0x16e5);
  std::vector<std::vector<std::uint8_t>> records;
  records.reserve(opts.hostnames);
  for (std::size_t h = 0; h < opts.hostnames; ++h) {
    net::ClientHelloSpec spec;
    spec.sni = "svc" + std::to_string(h) + ".topic" +
               std::to_string(h % 330) + ".example.com";
    records.push_back(net::build_client_hello_record(spec));
  }
  std::vector<net::Packet> packets;
  packets.reserve(opts.flows + opts.flows / 4 + 1);
  for (std::size_t i = 0; i < opts.flows; ++i) {
    std::uint32_t user =
        rng.next_below(static_cast<std::uint32_t>(opts.users));
    std::uint32_t host =
        rng.next_below(static_cast<std::uint32_t>(opts.hostnames));
    net::Packet p;
    p.timestamp = static_cast<util::Timestamp>(i / 256);
    p.tuple.src_ip = 0x0A000000u + user;
    // Flow-unique destination: the SNI comes from the payload, so the
    // address only has to make the 5-tuple distinct.
    p.tuple.dst_ip = 0xC0000000u + static_cast<std::uint32_t>(i);
    p.tuple.src_port = static_cast<std::uint16_t>(1024 + (i & 0x7FFF));
    p.tuple.dst_port = 443;
    p.tuple.proto = net::Transport::kTcp;
    p.src_mac = 0x02000000000ULL + user;
    const auto& rec = records[host];
    if (i % 4 == 0 && rec.size() > 40) {
      p.payload.assign(rec.begin(), rec.begin() + 40);
      net::Packet rest = p;
      rest.payload.assign(rec.begin() + 40, rec.end());
      packets.push_back(std::move(p));
      packets.push_back(std::move(rest));
    } else {
      p.payload = rec;
      packets.push_back(std::move(p));
    }
  }
  return packets;
}

}  // namespace ingest_detail

/// Runs the six measurements (ST pass, 1-shard identity oracle, per-shard
/// serial pass, sharded wall-clock pass, flight-recorder overhead pass,
/// memory-accounting snapshot) on one shared corpus.
inline IngestBaselineResult run_ingest_baseline(
    const IngestBaselineOptions& opts = {}) {
  using ingest_detail::seconds_since;

  IngestBaselineResult result;
  result.flows = opts.flows;
  result.shards = opts.shards;
  result.hardware_threads = std::thread::hardware_concurrency();

  std::cerr << "[baseline] building " << opts.flows
            << "-flow ClientHello corpus (" << opts.users << " users, "
            << opts.hostnames << " hostnames)...\n";
  std::vector<net::Packet> packets = ingest_detail::make_corpus(opts);
  result.packets = packets.size();

  net::IngestOptions pipe_opts;
  pipe_opts.vantage = net::Vantage::kWifiProvider;

  // Warm-up: touch the registry statics and the allocator pools outside the
  // measured regions.
  {
    net::SniObserver warm(pipe_opts.vantage, pipe_opts.sni_options);
    for (std::size_t i = 0; i < std::min<std::size_t>(packets.size(), 2048);
         ++i) {
      warm.observe(packets[i]);
    }
  }

  // 1. The legacy path as it ships: one observer, owning-string events,
  //    per-packet registry updates.
  std::cerr << "[baseline] ingest: single-threaded observer pass...\n";
  std::vector<net::HostnameEvent> st_events;
  st_events.reserve(opts.flows);
  std::uint64_t alloc0 = allocations_now();
  auto t0 = std::chrono::steady_clock::now();
  {
    net::SniObserver observer(pipe_opts.vantage, pipe_opts.sni_options);
    for (const net::Packet& p : packets) {
      if (auto ev = observer.observe(p)) st_events.push_back(std::move(*ev));
    }
  }
  result.st_s = seconds_since(t0);
  std::uint64_t alloc_st = allocations_now() - alloc0;
  result.events = st_events.size();
  if (alloc_st > 0 && !st_events.empty()) {
    result.alloc_per_event_st =
        static_cast<double>(alloc_st) / static_cast<double>(st_events.size());
  }

  // 2. Identity oracle: a 1-shard pipeline must reproduce the observer's
  //    event stream bit for bit (same ids, same order, same names).
  std::cerr << "[baseline] ingest: 1-shard identity oracle...\n";
  {
    util::InternPool pool;
    std::vector<net::InternedEvent> got;
    got.reserve(st_events.size());
    net::IngestOptions one = pipe_opts;
    one.shards = 1;
    net::IngestPipeline pipeline(
        one, pool, [&](std::span<const net::InternedEvent> batch) {
          got.insert(got.end(), batch.begin(), batch.end());
        });
    pipeline.push(packets);
    pipeline.stop();
    result.oneshard_identical = got.size() == st_events.size();
    for (std::size_t i = 0; result.oneshard_identical && i < got.size();
         ++i) {
      result.oneshard_identical =
          got[i].user_id == st_events[i].user_id &&
          got[i].timestamp == st_events[i].timestamp &&
          got[i].host_id != util::InternPool::kInvalidId &&
          pool.name(got[i].host_id) == st_events[i].hostname;
    }
  }

  // 3. Per-shard serial pass: the parallel-section bound. Same routing,
  //    same engines, same intern pool type as the workers, run one shard
  //    at a time on one core.
  std::cerr << "[baseline] ingest: per-shard serial pass (" << opts.shards
            << " shards)...\n";
  {
    std::vector<std::vector<const net::Packet*>> lanes(opts.shards);
    for (const net::Packet& p : packets) {
      lanes[net::IngestPipeline::shard_of(p, pipe_opts.vantage, opts.shards)]
          .push_back(&p);
    }
    net::IngestOptions sharded = pipe_opts;
    sharded.shards = opts.shards;
    util::InternPool pool;
    std::vector<net::InternedEvent> events;
    events.reserve(result.events + 16);
    std::size_t serial_events = 0;
    std::uint64_t alloc1 = allocations_now();
    for (std::size_t s = 0; s < opts.shards; ++s) {
      net::ShardEngine engine(sharded, static_cast<std::uint32_t>(s), pool);
      auto ts = std::chrono::steady_clock::now();
      for (const net::Packet* p : lanes[s]) engine.process(*p, events);
      double shard_s = seconds_since(ts);
      result.shard_serial_sum_s += shard_s;
      result.shard_serial_max_s =
          std::max(result.shard_serial_max_s, shard_s);
      serial_events += events.size();
      events.clear();
    }
    std::uint64_t alloc_mt = allocations_now() - alloc1;
    if (alloc_mt > 0 && serial_events > 0) {
      result.alloc_per_event_sharded = static_cast<double>(alloc_mt) /
                                       static_cast<double>(serial_events);
    }
  }

  // 4. Sharded wall clock: the pipeline end to end under the lossless
  //    policy. On boxes with fewer cores than shards this measures
  //    time-slicing, not parallelism — reported, gated only when
  //    measured_speedup_enforced().
  std::cerr << "[baseline] ingest: " << opts.shards
            << "-shard pipeline wall-clock pass...\n";
  {
    net::IngestOptions sharded = pipe_opts;
    sharded.shards = opts.shards;
    util::InternPool pool;
    std::uint64_t delivered = 0;
    net::IngestPipeline pipeline(
        sharded, pool, [&](std::span<const net::InternedEvent> batch) {
          delivered += batch.size();
        });
    auto tw = std::chrono::steady_clock::now();
    pipeline.push(packets);
    pipeline.flush();
    result.mt_wall_s = seconds_since(tw);
    pipeline.stop();
    result.dropped = pipeline.stats().dropped;
  }

  // 5. Flight-recorder overhead: the serial 1-shard engine pass (the same
  //    per-packet path the workers run) with the recorder detached vs
  //    sampling at the shipped rate. Reps interleave off/on and the minimum
  //    is kept per side, so CPU-frequency drift cancels instead of landing
  //    on whichever side ran last.
  if (opts.flight_sample_every != 0) {
    std::cerr << "[baseline] ingest: flight-recorder overhead pass (1/"
              << opts.flight_sample_every << " sampling)...\n";
    obs::FlightRecorderOptions fr_opts;
    fr_opts.sample_every = opts.flight_sample_every;
    fr_opts.seed = opts.seed;
    obs::FlightRecorder recorder(fr_opts);
    net::IngestOptions one = pipe_opts;
    one.shards = 1;
    net::IngestOptions traced = one;
    traced.flight = &recorder;
    result.flight_sample_every = opts.flight_sample_every;
    std::vector<net::InternedEvent> events;
    events.reserve(result.events + 16);
    auto run_pass = [&](const net::IngestOptions& engine_opts) {
      util::InternPool pool;
      net::ShardEngine engine(engine_opts, 0, pool);
      events.clear();
      auto ts = std::chrono::steady_clock::now();
      for (const net::Packet& p : packets) engine.process(p, events);
      return seconds_since(ts);
    };
    run_pass(one);  // warm-up: fault in the corpus + allocator pools
    // Min-of-many per side: scheduler noise only ever inflates a pass, so
    // the minimum converges on the true cost; alternating the order per
    // rep cancels any systematic first-runner advantage.
    constexpr int kReps = 15;
    double off_s = 0.0, on_s = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      double off, on;
      if (rep % 2 == 0) {
        off = run_pass(one);
        on = run_pass(traced);
      } else {
        on = run_pass(traced);
        off = run_pass(one);
      }
      off_s = rep == 0 ? off : std::min(off_s, off);
      on_s = rep == 0 ? on : std::min(on_s, on);
    }
    result.flight_off_s = off_s;
    result.flight_on_s = on_s;
    result.flight_sampled = recorder.sampled_count();
  }

  // 6. Memory accounting: run the sharded pipeline once more draining into
  //    the interned session store over the shard-affine direct lane (the
  //    deployment shape: shared InternPool, store shards == pipeline
  //    shards, ingest_shard_id from the worker threads) and snapshot the
  //    global accountant while the pipeline's probes (intern pool, flow
  //    tables, demux) are still registered — the bytes-per-user figure
  //    BENCH_micro.json records.
  {
    std::cerr << "[baseline] ingest: memory accounting snapshot...\n";
    net::IngestOptions sharded = pipe_opts;
    sharded.shards = opts.shards;
    util::InternPool pool;
    profile::SessionStoreParams store_params;
    store_params.shards = opts.shards;
    store_params.external_pool = &pool;
    profile::SessionStore store(store_params);
    // The store's accounting surface is relaxed-atomic, so the snapshot
    // probes can read it directly while the workers write.
    sharded.shard_sink = [&](std::size_t shard,
                             std::span<const net::InternedEvent> batch) {
      for (const net::InternedEvent& e : batch) {
        if (e.host_id == util::InternPool::kInvalidId) continue;
        store.ingest_shard_id(shard, e.user_id, e.timestamp, e.host_id);
      }
    };
    net::IngestPipeline pipeline(sharded, pool, nullptr);
    auto& acct = obs::MemoryAccountant::global();
    std::uint64_t store_probe =
        acct.add_probe("session_windows", /*per_user=*/true,
                       [&] { return store.memory_bytes(); });
    std::uint64_t user_probe =
        acct.add_user_probe([&] { return store.user_count(); });
    pipeline.push(packets);
    pipeline.flush();
    result.memory = acct.snapshot();
    result.session_store_bytes = store.memory_bytes();
    result.session_store_users = store.user_count();
    pipeline.stop();
    acct.remove_probe(store_probe);
    acct.remove_user_probe(user_probe);
  }
  return result;
}

}  // namespace netobs::bench
