// Figure 2 — User diversity (hostnames).
//
// Paper: cores of hostnames visited by >= {80,60,40,20}% of users have
// sizes 30/120/271/639; 75% of users visit >= 217 hostnames and 25% visit
// >= 1015; 25% of users visited >= 985 hostnames outside Core 80 and 75%
// visited >= 191 outside Core 80.
//
// This bench regenerates the CCDF of distinct hostnames per user, overall
// and outside each core, over the simulated month.
#include <iostream>

#include "bench/common.hpp"
#include "eval/diversity.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {300, 30, 2021, ""});
  auto world = bench::make_world(cfg);
  util::print_banner(std::cout, "Figure 2: user diversity (hostnames)");
  bench::print_scale_note(cfg, world);

  synth::BrowsingSimulator sim(*world.universe, *world.population);
  auto trace = sim.simulate(0, cfg.days);
  std::cout << "trace: " << trace.events.size() << " connections\n";

  // Distinct hostnames per user (ids via the universe index).
  std::vector<std::vector<std::uint64_t>> per_user(world.population->size());
  for (const auto& e : trace.events) {
    per_user[e.user_id].push_back(world.universe->index_of(e.hostname));
  }
  auto result = eval::analyze_diversity(per_user);

  util::Table cores({"core", "size", "paper size",
                     "hosts @75% users", "hosts @25% users",
                     "% users w/ 0 outside"});
  const char* paper_sizes[] = {"30", "120", "271", "639"};
  for (std::size_t i = 0; i < result.cores.size(); ++i) {
    const auto& core = result.cores[i];
    cores.add_row({util::format("Core %.0f", core.threshold * 100),
                   std::to_string(core.members.size()), paper_sizes[i],
                   util::format("%.0f", result.items_at_user_fraction(i, 0.75)),
                   util::format("%.0f", result.items_at_user_fraction(i, 0.25)),
                   util::format("%.1f", core.users_with_zero_outside * 100)});
  }
  cores.print(std::cout);

  util::Table all({"metric", "measured", "paper"});
  all.add_row({"distinct hostnames (universe touched)",
               std::to_string(result.distinct_items), "~470K (full scale)"});
  all.add_row({"hosts visited by >=75% quantile user",
               util::format("%.0f",
                            result.items_at_user_fraction(
                                static_cast<std::size_t>(-1), 0.75)),
               "217"});
  all.add_row({"hosts visited by >=25% quantile user",
               util::format("%.0f",
                            result.items_at_user_fraction(
                                static_cast<std::size_t>(-1), 0.25)),
               "1015"});
  all.print(std::cout);

  // CCDF samples for plotting (log-spaced in x).
  util::Table ccdf({"N hostnames", "% users >= N (all)",
                    "% users >= N (outside Core 80)"});
  for (double n : {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0}) {
    auto frac_at = [&](const std::vector<util::CcdfPoint>& curve) {
      double frac = 0.0;
      for (const auto& p : curve) {
        if (p.x >= n) {
          frac = p.fraction;
          break;
        }
      }
      return frac * 100.0;
    };
    ccdf.add_row({util::format("%.0f", n),
                  util::format("%.1f", frac_at(result.all_ccdf)),
                  util::format("%.1f",
                               frac_at(result.cores[0].outside_ccdf))});
  }
  ccdf.print(std::cout);

  std::cout << "\nshape checks: cores shrink as the threshold rises; the\n"
               "outside-core CCDFs stay heavy-tailed (users remain\n"
               "distinguishable once the universal core is removed).\n";
  bench::dump_telemetry(cfg);
  return 0;
}
