// kNN oracle: the blocked heap scan, the batched sweep and the sharded
// scan must all reproduce a naive full-sort reference *bit-identically*
// (same ids, same float similarities, same deterministic tie-break).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "embedding/knn.hpp"
#include "embedding/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

namespace netobs::embedding {
namespace {

EmbeddingMatrix random_matrix(std::size_t rows, std::size_t dim,
                              std::uint64_t seed) {
  EmbeddingMatrix m(rows, dim);
  util::Pcg32 rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    for (float& v : m.row(i)) {
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  return m;
}

/// Naive reference: normalise everything, score every row with the span
/// kernel, full sort with the published tie-break.
std::vector<CosineKnnIndex::Neighbor> naive_topk(const EmbeddingMatrix& m,
                                                 std::vector<float> query,
                                                 std::size_t n) {
  float norm = util::l2_norm(query);
  if (norm == 0.0F || n == 0) return {};
  util::scale(query, 1.0F / norm);
  std::vector<CosineKnnIndex::Neighbor> scored;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    std::vector<float> row(m.row(i).begin(), m.row(i).end());
    util::normalize(row);
    scored.push_back({static_cast<TokenId>(i), util::dot(query, row)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const CosineKnnIndex::Neighbor& a,
               const CosineKnnIndex::Neighbor& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.id < b.id;
            });
  scored.resize(std::min(n, scored.size()));
  return scored;
}

void expect_identical(const std::vector<CosineKnnIndex::Neighbor>& got,
                      const std::vector<CosineKnnIndex::Neighbor>& want,
                      const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " rank " << i;
    // Bit-identical, not approximately equal: every path must compute the
    // very same floats.
    EXPECT_EQ(got[i].similarity, want[i].similarity) << what << " rank " << i;
  }
}

TEST(KnnOracle, BlockedScanMatchesNaiveReference) {
  // 403 rows hits partial tail blocks; dim 37 exercises padded lanes.
  auto m = random_matrix(403, 37, 7);
  CosineKnnIndex index(m);
  util::Pcg32 rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> q(37);
    for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (std::size_t n : {1UL, 10UL, 100UL, 500UL}) {
      expect_identical(index.query(q, n), naive_topk(m, q, n), "query");
    }
  }
}

TEST(KnnOracle, BatchMatchesPerQueryScan) {
  auto m = random_matrix(257, 24, 9);
  CosineKnnIndex index(m);
  util::Pcg32 rng(13);
  std::vector<std::vector<float>> queries;
  for (int i = 0; i < 9; ++i) {
    std::vector<float> q(24);
    for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    queries.push_back(std::move(q));
  }
  queries.push_back(std::vector<float>(24, 0.0F));  // zero-norm slot

  auto batched = index.query_batch(queries, 20);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i + 1 < queries.size(); ++i) {
    expect_identical(batched[i], index.query(queries[i], 20), "batch");
    expect_identical(batched[i], naive_topk(m, queries[i], 20),
                     "batch-vs-naive");
  }
  EXPECT_TRUE(batched.back().empty()) << "zero query must stay empty";
}

TEST(KnnOracle, ShardedScanIsBitIdenticalToSerial) {
  auto m = random_matrix(1000, 16, 21);
  CosineKnnIndex serial(m);
  CosineKnnIndex sharded(m);
  util::ThreadPool pool(4);
  sharded.set_thread_pool(&pool, 64);  // force several shards

  util::Pcg32 rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> q(16);
    for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    expect_identical(sharded.query(q, 50), serial.query(q, 50), "sharded");
    expect_identical(sharded.query(q, 50), naive_topk(m, q, 50),
                     "sharded-vs-naive");
  }
  // nearest_to excludes the row itself on both paths.
  auto nb_serial = serial.nearest_to(5, 10);
  auto nb_sharded = sharded.nearest_to(5, 10);
  expect_identical(nb_sharded, nb_serial, "nearest_to");
  for (const auto& nb : nb_sharded) EXPECT_NE(nb.id, 5U);
}

TEST(KnnOracle, ShardedBatchIsBitIdenticalToSerialBatch) {
  auto m = random_matrix(1200, 20, 23);
  CosineKnnIndex serial(m);
  CosineKnnIndex sharded(m);
  util::ThreadPool pool(4);
  sharded.set_thread_pool(&pool, 64);  // rows >= 2 * 64 => sharded path

  util::Pcg32 rng(29);
  std::vector<std::vector<float>> queries;
  for (int i = 0; i < 7; ++i) {
    std::vector<float> q(20);
    for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    queries.push_back(std::move(q));
  }
  queries.insert(queries.begin() + 3,
                 std::vector<float>(20, 0.0F));  // zero-norm mid-batch

  auto got = sharded.query_batch(queries, 30);
  auto want = serial.query_batch(queries, 30);
  ASSERT_EQ(got.size(), queries.size());
  ASSERT_EQ(want.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i == 3) {
      EXPECT_TRUE(got[i].empty());
      EXPECT_TRUE(want[i].empty());
      continue;
    }
    expect_identical(got[i], want[i], "sharded batch");
    // ... and both agree with the single-query serial scan and the naive
    // reference, closing the loop across all four paths.
    expect_identical(got[i], serial.query(queries[i], 30),
                     "sharded-batch-vs-query");
    expect_identical(got[i], naive_topk(m, queries[i], 30),
                     "sharded-batch-vs-naive");
  }
}

TEST(KnnOracle, TiesBreakByAscendingId) {
  // Five identical rows plus one orthogonal row: the tie group must come
  // back in ascending id order on every path.
  EmbeddingMatrix m(6, 4);
  for (std::size_t i = 0; i < 5; ++i) m.row(i)[0] = 2.0F;
  m.row(5)[1] = 1.0F;
  CosineKnnIndex index(m);
  std::vector<float> q = {1.0F, 0.0F, 0.0F, 0.0F};

  auto got = index.query(q, 5);
  ASSERT_EQ(got.size(), 5U);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i].id, static_cast<TokenId>(i));
  }
  auto batched = index.query_batch({q}, 5);
  expect_identical(batched[0], got, "tie batch");
  expect_identical(got, naive_topk(m, q, 5), "tie naive");
}

TEST(KnnOracle, ExcludedRowNeverAppears) {
  auto m = random_matrix(100, 8, 3);
  CosineKnnIndex index(m);
  for (TokenId id : {0U, 50U, 99U}) {  // first, middle and last block
    auto nbs = index.nearest_to(id, 99);
    EXPECT_EQ(nbs.size(), 99U);
    for (const auto& nb : nbs) EXPECT_NE(nb.id, id);
  }
}

}  // namespace
}  // namespace netobs::embedding
