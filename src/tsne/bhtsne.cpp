#include "tsne/bhtsne.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace netobs::tsne {

namespace {

/// Sparse row-compressed affinity matrix.
struct SparseP {
  std::vector<std::size_t> row_start;  // n+1
  std::vector<std::uint32_t> col;
  std::vector<double> value;
};

/// Exact brute-force Euclidean kNN in the input space.
std::vector<std::vector<std::pair<double, std::uint32_t>>> knn_euclidean(
    const std::vector<float>& rows, std::size_t n, std::size_t dim,
    std::size_t k) {
  std::vector<std::vector<std::pair<double, std::uint32_t>>> out(n);
  std::vector<std::pair<double, std::uint32_t>> scratch;
  for (std::size_t i = 0; i < n; ++i) {
    scratch.clear();
    scratch.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double d2 = 0.0;
      for (std::size_t t = 0; t < dim; ++t) {
        double diff = static_cast<double>(rows[i * dim + t]) -
                      static_cast<double>(rows[j * dim + t]);
        d2 += diff * diff;
      }
      scratch.push_back({d2, static_cast<std::uint32_t>(j)});
    }
    std::size_t take = std::min(k, scratch.size());
    std::partial_sort(scratch.begin(),
                      scratch.begin() + static_cast<std::ptrdiff_t>(take),
                      scratch.end());
    out[i].assign(scratch.begin(),
                  scratch.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

/// Perplexity-calibrated sparse symmetric P over kNN graphs.
SparseP compute_sparse_p(const std::vector<float>& rows, std::size_t n,
                         std::size_t dim, double perplexity) {
  std::size_t k = std::min<std::size_t>(
      n - 1, static_cast<std::size_t>(3.0 * perplexity));
  auto neighbors = knn_euclidean(rows, n, dim, k);
  const double target_entropy = std::log(perplexity);

  // Conditional p_{j|i} over the kNN of i.
  std::vector<std::vector<double>> cond(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& nb = neighbors[i];
    std::vector<double> p(nb.size());
    double beta = 1.0;
    double beta_min = 0.0;
    double beta_max = std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < 64; ++iter) {
      double sum = 0.0;
      for (std::size_t j = 0; j < nb.size(); ++j) {
        p[j] = std::exp(-beta * nb[j].first);
        sum += p[j];
      }
      if (sum <= 0.0) sum = 1e-12;
      double entropy = 0.0;
      for (double& v : p) {
        v /= sum;
        if (v > 1e-12) entropy -= v * std::log(v);
      }
      if (std::fabs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) {
        beta_min = beta;
        beta = std::isinf(beta_max) ? beta * 2.0 : (beta + beta_max) / 2.0;
      } else {
        beta_max = beta;
        beta = (beta + beta_min) / 2.0;
      }
    }
    cond[i] = std::move(p);
  }

  // Symmetrise: p_ij = (p_{j|i} + p_{i|j}) / (2n), built as a hash of pairs.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> sym(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < neighbors[i].size(); ++j) {
      std::uint32_t other = neighbors[i][j].second;
      double v = cond[i][j] / (2.0 * static_cast<double>(n));
      sym[i].push_back({other, v});
      sym[other].push_back({static_cast<std::uint32_t>(i), v});
    }
  }

  SparseP out;
  out.row_start.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    auto& entries = sym[i];
    std::sort(entries.begin(), entries.end());
    // Merge duplicate columns (i in j's list and j in i's list).
    std::size_t w = 0;
    for (std::size_t r = 0; r < entries.size(); ++r) {
      if (w > 0 && entries[w - 1].first == entries[r].first) {
        entries[w - 1].second += entries[r].second;
      } else {
        entries[w++] = entries[r];
      }
    }
    entries.resize(w);
    out.row_start[i + 1] = out.row_start[i] + w;
    for (const auto& [c, v] : entries) {
      out.col.push_back(c);
      out.value.push_back(std::max(v, 1e-12));
    }
  }
  return out;
}

/// Quadtree over 2D points with centres of mass (Barnes-Hut).
class QuadTree {
 public:
  QuadTree(const std::vector<double>& y, std::size_t n) : y_(y) {
    double min_x = std::numeric_limits<double>::infinity();
    double max_x = -min_x;
    double min_y = min_x;
    double max_y = -min_x;
    for (std::size_t i = 0; i < n; ++i) {
      min_x = std::min(min_x, y[i * 2]);
      max_x = std::max(max_x, y[i * 2]);
      min_y = std::min(min_y, y[i * 2 + 1]);
      max_y = std::max(max_y, y[i * 2 + 1]);
    }
    double cx = (min_x + max_x) / 2.0;
    double cy = (min_y + max_y) / 2.0;
    double half = std::max(max_x - min_x, max_y - min_y) / 2.0 + 1e-9;
    nodes_.reserve(4 * n);
    root_ = new_node(cx, cy, half);
    for (std::size_t i = 0; i < n; ++i) insert(root_, i, 0);
  }

  /// Accumulates the Barnes-Hut negative-force terms for point i:
  /// neg_f += q_num^2 * (y_i - com), z += q_num * count, with
  /// q_num = 1 / (1 + d^2).
  void compute(std::size_t i, double theta, double& neg_x, double& neg_y,
               double& z) const {
    walk(root_, i, theta * theta, neg_x, neg_y, z);
  }

 private:
  struct Node {
    double cx, cy, half;          // cell geometry
    double com_x = 0.0, com_y = 0.0;  // centre of mass
    double count = 0.0;
    int child[4] = {-1, -1, -1, -1};
    std::int64_t point = -1;  // leaf payload; -1 when empty/internal
    bool is_leaf = true;
  };

  int new_node(double cx, double cy, double half) {
    nodes_.push_back({cx, cy, half});
    return static_cast<int>(nodes_.size() - 1);
  }

  int quadrant_child(int node, int q) {
    Node& nd = nodes_[static_cast<std::size_t>(node)];
    if (nd.child[q] < 0) {
      double h = nd.half / 2.0;
      double cx = nd.cx + ((q & 1) != 0 ? h : -h);
      double cy = nd.cy + ((q & 2) != 0 ? h : -h);
      int created = new_node(cx, cy, h);
      nodes_[static_cast<std::size_t>(node)].child[q] = created;
      return created;
    }
    return nd.child[q];
  }

  int quadrant_of(int node, std::size_t point) const {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    int q = 0;
    if (y_[point * 2] >= nd.cx) q |= 1;
    if (y_[point * 2 + 1] >= nd.cy) q |= 2;
    return q;
  }

  void insert(int node, std::size_t point, int depth) {
    Node& nd = nodes_[static_cast<std::size_t>(node)];
    // Update centre of mass on the way down.
    nd.com_x = (nd.com_x * nd.count + y_[point * 2]) / (nd.count + 1.0);
    nd.com_y = (nd.com_y * nd.count + y_[point * 2 + 1]) / (nd.count + 1.0);
    nd.count += 1.0;

    if (nd.is_leaf && nd.point < 0) {
      nd.point = static_cast<std::int64_t>(point);
      return;
    }
    if (nd.is_leaf) {
      // Split: relocate the resident point (unless at max depth or
      // coincident with the new one — then aggregate in place).
      std::size_t resident = static_cast<std::size_t>(nd.point);
      bool coincident = y_[resident * 2] == y_[point * 2] &&
                        y_[resident * 2 + 1] == y_[point * 2 + 1];
      if (depth > 48 || coincident) {
        return;  // keep aggregated; COM/count already account for it
      }
      nd.is_leaf = false;
      nd.point = -1;
      int rq = quadrant_of(node, resident);
      insert_no_mass(quadrant_child(node, rq), resident, depth + 1);
    }
    int q = quadrant_of(node, point);
    insert_no_mass(quadrant_child(node, q), point, depth + 1);
  }

  /// insert() but the relocated resident's mass was already counted in all
  /// ancestors; only the subtree below gains mass.
  void insert_no_mass(int node, std::size_t point, int depth) {
    insert(node, point, depth);
  }

  void walk(int node, std::size_t i, double theta2, double& neg_x,
            double& neg_y, double& z) const {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    if (nd.count <= 0.0) return;
    double dx = y_[i * 2] - nd.com_x;
    double dy = y_[i * 2 + 1] - nd.com_y;
    double d2 = dx * dx + dy * dy;
    double cell = 2.0 * nd.half;
    bool summarise = nd.is_leaf || (cell * cell) < theta2 * d2;
    if (summarise) {
      // Skip the self-interaction of a singleton leaf holding i itself.
      if (nd.is_leaf && nd.count == 1.0 &&
          nd.point == static_cast<std::int64_t>(i)) {
        return;
      }
      double q_num = 1.0 / (1.0 + d2);
      double effective = nd.count;
      if (nd.is_leaf && nd.point == static_cast<std::int64_t>(i)) {
        effective -= 1.0;  // aggregated leaf containing i
        if (effective <= 0.0) return;
      }
      z += effective * q_num;
      double f = effective * q_num * q_num;
      neg_x += f * dx;
      neg_y += f * dy;
      return;
    }
    for (int c : nd.child) {
      if (c >= 0) walk(c, i, theta2, neg_x, neg_y, z);
    }
  }

  const std::vector<double>& y_;
  std::vector<Node> nodes_;
  int root_ = 0;
};

}  // namespace

TsneResult run_bhtsne(const std::vector<float>& rows, std::size_t n,
                      std::size_t dim, BhTsneParams params) {
  if (n == 0 || dim == 0 || rows.size() != n * dim) {
    throw std::invalid_argument("run_bhtsne: bad input shape");
  }
  if (params.perplexity <= 1.0) {
    throw std::invalid_argument("run_bhtsne: perplexity must be > 1");
  }
  if (static_cast<double>(n) < 3.0 * params.perplexity + 1.0) {
    throw std::invalid_argument("run_bhtsne: need > 3 * perplexity points");
  }
  if (params.theta < 0.0) {
    throw std::invalid_argument("run_bhtsne: theta must be >= 0");
  }

  SparseP p = compute_sparse_p(rows, n, dim, params.perplexity);

  util::Pcg32 rng(params.seed, 0xb475e);
  std::vector<double> y(n * 2);
  for (double& v : y) v = rng.normal(0.0, 1e-4);
  std::vector<double> dy(n * 2, 0.0);
  std::vector<double> velocity(n * 2, 0.0);
  std::vector<double> gains(n * 2, 1.0);

  TsneResult result;
  result.points = n;
  result.dims = 2;
  result.kl_history.reserve(static_cast<std::size_t>(params.iterations));

  for (int iter = 0; iter < params.iterations; ++iter) {
    double exaggeration =
        iter < params.exaggeration_iters ? params.early_exaggeration : 1.0;
    double momentum = iter < params.momentum_switch_iter
                          ? params.initial_momentum
                          : params.final_momentum;

    QuadTree tree(y, n);

    // Repulsive forces + normaliser Z.
    std::vector<double> neg(n * 2, 0.0);
    double z_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double nx = 0.0;
      double ny = 0.0;
      double zi = 0.0;
      tree.compute(i, params.theta, nx, ny, zi);
      neg[i * 2] = nx;
      neg[i * 2 + 1] = ny;
      z_total += zi;
    }
    if (z_total <= 0.0) z_total = 1e-12;

    // Attractive forces over the sparse P, plus KL bookkeeping.
    std::fill(dy.begin(), dy.end(), 0.0);
    double kl = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t e = p.row_start[i]; e < p.row_start[i + 1]; ++e) {
        std::size_t j = p.col[e];
        double dx = y[i * 2] - y[j * 2];
        double dyv = y[i * 2 + 1] - y[j * 2 + 1];
        double q_num = 1.0 / (1.0 + dx * dx + dyv * dyv);
        double f = exaggeration * p.value[e] * q_num;
        dy[i * 2] += f * dx;
        dy[i * 2 + 1] += f * dyv;
        double qij = std::max(q_num / z_total, 1e-12);
        kl += p.value[e] * std::log(p.value[e] / qij);
      }
      dy[i * 2] -= neg[i * 2] / z_total;
      dy[i * 2 + 1] -= neg[i * 2 + 1] / z_total;
    }
    result.kl_history.push_back(kl);

    for (std::size_t idx = 0; idx < n * 2; ++idx) {
      bool same_sign = (dy[idx] > 0.0) == (velocity[idx] > 0.0);
      gains[idx] = same_sign ? std::max(0.01, gains[idx] * 0.8)
                             : gains[idx] + 0.2;
      velocity[idx] = momentum * velocity[idx] -
                      params.learning_rate * gains[idx] * dy[idx];
      y[idx] += velocity[idx];
    }
    for (std::size_t d = 0; d < 2; ++d) {
      double mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) mean += y[i * 2 + d];
      mean /= static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) y[i * 2 + d] -= mean;
    }
  }

  result.embedding = std::move(y);
  return result;
}

TsneResult run_bhtsne(const embedding::EmbeddingMatrix& data,
                      BhTsneParams params) {
  std::vector<float> rows = data.packed_copy();
  return run_bhtsne(rows, data.rows(), data.dim(), params);
}

}  // namespace netobs::tsne
