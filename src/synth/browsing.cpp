#include "synth/browsing.hpp"

#include <algorithm>

namespace netobs::synth {

const std::vector<AdSlot>& standard_ad_sizes() {
  static const std::vector<AdSlot> kSizes = {
      {728, 90}, {300, 250}, {160, 600}, {320, 50}, {970, 250}, {300, 600}};
  return kSizes;
}

namespace {

// Relative browsing intensity per hour of day (late-evening peak).
constexpr double kDiurnal[24] = {0.3, 0.15, 0.1, 0.1, 0.1, 0.2, 0.5, 1.0,
                                 1.5, 2.0,  2.0, 2.0, 2.5, 2.0, 2.0, 2.0,
                                 2.5, 3.0,  3.5, 4.0, 4.0, 3.5, 2.0, 1.0};

util::ZipfSampler make_sampler(std::size_t n, double s) {
  return util::ZipfSampler(std::max<std::size_t>(1, n), s);
}

}  // namespace

BrowsingSimulator::BrowsingSimulator(const HostnameUniverse& universe,
                                     const UserPopulation& population,
                                     BrowsingParams params)
    : universe_(&universe),
      population_(&population),
      params_(params),
      universal_sampler_(make_sampler(universe.universal().size(), 0.8)),
      cdn_sampler_(make_sampler(universe.shared_cdns().size(), 1.2)),
      tracker_sampler_(make_sampler(universe.trackers().size(), 1.2)) {
  topic_site_samplers_.reserve(universe.topic_count());
  for (std::size_t t = 0; t < universe.topic_count(); ++t) {
    topic_site_samplers_.push_back(make_sampler(
        universe.sites_of_topic(t).size(), universe.params().zipf_exponent));
  }
}

void BrowsingSimulator::simulate_user_day(const User& user, std::int64_t day,
                                          BrowsingTrace& trace) const {
  util::Pcg32 rng(params_.seed,
                  util::mix64((static_cast<std::uint64_t>(user.id) << 24) ^
                              static_cast<std::uint64_t>(day) ^ 0xDA1));
  unsigned sessions = rng.poisson(params_.sessions_per_day * user.activity);
  std::vector<double> hour_weights(std::begin(kDiurnal), std::end(kDiurnal));

  for (unsigned s = 0; s < sessions; ++s) {
    std::size_t hour = rng.categorical(hour_weights);
    util::Timestamp t = day * util::kDay +
                        static_cast<util::Timestamp>(hour) * util::kHour +
                        static_cast<util::Timestamp>(rng.next_below(3600));

    std::vector<double> interests(user.interests.begin(),
                                  user.interests.end());
    std::size_t topic = rng.categorical(interests);
    unsigned pages =
        1 + rng.poisson(std::max(0.0, params_.pages_per_session - 1.0));

    for (unsigned p = 0; p < pages; ++p) {
      if (p > 0 && rng.bernoulli(params_.topic_switch_prob)) {
        topic = rng.categorical(interests);
      }
      // Pick the page's site.
      std::size_t site;
      bool universal_page =
          rng.bernoulli(params_.universal_page_prob) ||
          universe_->sites_of_topic(topic).empty();
      if (universal_page) {
        site = universe_->universal().at(
            universal_sampler_.sample(rng) %
            universe_->universal().size());
      } else {
        const auto& sites = universe_->sites_of_topic(topic);
        site = sites[topic_site_samplers_[topic].sample(rng) % sites.size()];
      }

      auto emit = [&](std::size_t host_idx, util::Timestamp when) {
        trace.events.push_back(
            {user.id, when, universe_->host(host_idx).name});
      };

      emit(site, t);
      // Satellites of the site fire right after the main document.
      for (std::size_t sat : universe_->satellites_of(site)) {
        if (rng.bernoulli(params_.satellite_fire_prob)) {
          emit(sat, t + 1 + rng.next_below(3));
        }
      }
      if (!universe_->shared_cdns().empty() &&
          rng.bernoulli(params_.shared_cdn_prob)) {
        emit(universe_->shared_cdns().at(cdn_sampler_.sample(rng) %
                                         universe_->shared_cdns().size()),
             t + 1 + rng.next_below(4));
      }
      unsigned trackers = rng.poisson(params_.trackers_per_page);
      for (unsigned k = 0; k < trackers && !universe_->trackers().empty();
           ++k) {
        emit(universe_->trackers().at(tracker_sampler_.sample(rng) %
                                      universe_->trackers().size()),
             t + 2 + rng.next_below(5));
      }
      // Social-check detour: an extra universal hit mid-page.
      if (!universe_->universal().empty() &&
          rng.bernoulli(params_.universal_detour_prob)) {
        emit(universe_->universal().at(universal_sampler_.sample(rng) %
                                       universe_->universal().size()),
             t + 5 + rng.next_below(10));
      }

      // The page view itself (ad slots for the experiment).
      PageView view;
      view.user_id = user.id;
      view.timestamp = t;
      view.site = site;
      view.topic = topic;
      unsigned slots = rng.poisson(params_.slots_per_page);
      const auto& sizes = standard_ad_sizes();
      for (unsigned k = 0; k < std::min(slots, 3U); ++k) {
        view.slots.push_back(
            sizes[rng.next_below(static_cast<std::uint32_t>(sizes.size()))]);
      }
      trace.page_views.push_back(std::move(view));

      t += 5 + static_cast<util::Timestamp>(
                   rng.exponential(1.0 / params_.page_dwell_mean_s));
    }
  }
}

BrowsingTrace BrowsingSimulator::simulate(std::int64_t start_day,
                                          std::int64_t num_days) const {
  BrowsingTrace trace;
  for (const auto& user : population_->users()) {
    for (std::int64_t d = start_day; d < start_day + num_days; ++d) {
      simulate_user_day(user, d, trace);
    }
  }
  auto by_time = [](const auto& a, const auto& b) {
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    return a.user_id < b.user_id;
  };
  std::stable_sort(trace.events.begin(), trace.events.end(), by_time);
  std::stable_sort(trace.page_views.begin(), trace.page_views.end(), by_time);
  return trace;
}

}  // namespace netobs::synth
