// Dense float vector kernels shared by the embedding trainer, the kNN index
// and the profiler. Everything operates on contiguous float spans so the hot
// loops vectorise; the trainer's sigmoid goes through a lookup table exactly
// like the word2vec/GENSIM reference implementations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace netobs::util {

float dot(std::span<const float> a, std::span<const float> b);

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void scale(std::span<float> x, float alpha);

float l2_norm(std::span<const float> x);

/// Normalises x to unit length in place; leaves the zero vector untouched.
void normalize(std::span<float> x);

/// Cosine similarity; 0 if either vector is zero.
float cosine(std::span<const float> a, std::span<const float> b);

float euclidean_distance(std::span<const float> a, std::span<const float> b);

/// Element-wise mean of equal-length rows; returns empty when rows is empty.
std::vector<float> mean_of_rows(const std::vector<std::span<const float>>& rows);

/// Exact sigmoid 1 / (1 + e^-x).
float sigmoid(float x);

/// Precomputed sigmoid table over [-kMaxExp, kMaxExp], the word2vec trick:
/// callers clamp to the bounds (the gradient saturates there anyway).
class SigmoidTable {
 public:
  static constexpr float kMaxExp = 6.0F;
  static constexpr std::size_t kTableSize = 1024;

  SigmoidTable();

  /// Approximate sigmoid; exact at the table knots, clamped outside
  /// [-kMaxExp, kMaxExp].
  float operator()(float x) const;

 private:
  std::vector<float> table_;
};

/// Process-wide shared table (construction is cheap but the trainer calls
/// this per sample).
const SigmoidTable& shared_sigmoid_table();

}  // namespace netobs::util
