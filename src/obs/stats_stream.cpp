#include "obs/stats_stream.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace netobs::obs {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// "10s" / "1.5s" / "0.99" — shortest %g rendering for label values.
std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

// ------------------------------------------------------------ RateEstimator

RateEstimator::RateEstimator(double window_seconds, std::size_t buckets)
    : bucket_seconds_(window_seconds / static_cast<double>(buckets)),
      nbuckets_(buckets) {
  if (!(window_seconds > 0.0) || buckets == 0) {
    throw std::invalid_argument("RateEstimator: need window>0, buckets>0");
  }
  slots_ = std::make_unique<Slot[]>(nbuckets_);
}

void RateEstimator::record(double n) { record_at(steady_seconds(), n); }

void RateEstimator::record_at(double now_seconds, double n) {
  auto tick = static_cast<std::int64_t>(now_seconds / bucket_seconds_);
  Slot& slot = slots_[static_cast<std::size_t>(tick) % nbuckets_];
  std::int64_t owner = slot.tick.load(std::memory_order_relaxed);
  if (owner != tick) {
    // Recycle the slot for the new tick. The winner of the CAS resets the
    // count; a concurrent add that lands between the CAS and the store is
    // lost — see the class comment.
    if (slot.tick.compare_exchange_strong(owner, tick,
                                          std::memory_order_relaxed)) {
      slot.count.store(n, std::memory_order_relaxed);
      return;
    }
  }
  detail::atomic_add(slot.count, n);
}

double RateEstimator::rate() const { return rate_at(steady_seconds()); }

double RateEstimator::rate_at(double now_seconds) const {
  auto tick = static_cast<std::int64_t>(now_seconds / bucket_seconds_);
  std::int64_t oldest = tick - static_cast<std::int64_t>(nbuckets_) + 1;
  double sum = 0.0;
  for (std::size_t i = 0; i < nbuckets_; ++i) {
    std::int64_t owner = slots_[i].tick.load(std::memory_order_relaxed);
    if (owner >= oldest && owner <= tick) {
      sum += slots_[i].count.load(std::memory_order_relaxed);
    }
  }
  return sum / window_seconds();
}

// --------------------------------------------------------------- P2Quantile

P2Quantile::P2Quantile(double quantile) : q_(quantile) {
  if (!(quantile > 0.0 && quantile < 1.0)) {
    throw std::invalid_argument("P2Quantile: quantile must be in (0,1)");
  }
}

void P2Quantile::observe(double x) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
      pos_[0] = 1;
      pos_[1] = 2;
      pos_[2] = 3;
      pos_[3] = 4;
      pos_[4] = 5;
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * q_;
      desired_[2] = 1.0 + 4.0 * q_;
      desired_[3] = 3.0 + 2.0 * q_;
      desired_[4] = 5.0;
      incr_[0] = 0.0;
      incr_[1] = q_ / 2.0;
      incr_[2] = q_;
      incr_[3] = (1.0 + q_) / 2.0;
      incr_[4] = 1.0;
    }
    return;
  }
  ++count_;

  // Cell k the observation falls into; extremes clamp to the end markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += incr_[i];

  // Adjust the three interior markers toward their desired positions with a
  // piecewise-parabolic (fallback linear) height update.
  for (int i = 1; i <= 3; ++i) {
    double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      double s = d >= 0.0 ? 1.0 : -1.0;
      double np = pos_[i + 1], nc = pos_[i], nm = pos_[i - 1];
      double hp = heights_[i + 1], hc = heights_[i], hm = heights_[i - 1];
      double parabolic =
          hc + s / (np - nm) *
                   ((nc - nm + s) * (hp - hc) / (np - nc) +
                    (np - nc - s) * (hc - hm) / (nc - nm));
      if (parabolic > hm && parabolic < hp) {
        heights_[i] = parabolic;
      } else {
        // Linear toward the neighbour in the movement direction.
        int j = i + static_cast<int>(s);
        heights_[i] = hc + s * (heights_[j] - hc) / (pos_[j] - nc);
      }
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return std::nan("");
  if (count_ < 5) {
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    auto idx = static_cast<std::size_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min(idx, static_cast<std::size_t>(count_ - 1))];
  }
  return heights_[2];
}

std::uint64_t P2Quantile::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

// ----------------------------------------------------------------- StatsHub

StatsHub& StatsHub::global() {
  static StatsHub hub;
  return hub;
}

std::uint64_t StatsHub::add(std::function<void()> publish) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t handle = next_handle_++;
  publishers_.emplace(handle, std::move(publish));
  return handle;
}

void StatsHub::remove(std::uint64_t handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  publishers_.erase(handle);
}

void StatsHub::publish() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [handle, fn] : publishers_) fn();
}

// ---------------------------------------------------------------- RateGauge

RateGauge::RateGauge(MetricsRegistry& registry, const std::string& name,
                     const std::string& help,
                     std::vector<double> windows_seconds, const Labels& labels) {
  for (double w : windows_seconds) {
    Labels cell_labels = labels;
    cell_labels.emplace_back("window", format_number(w) + "s");
    cells_.push_back(Cell{std::make_unique<RateEstimator>(w),
                          &registry.gauge(name, help, cell_labels)});
  }
  hub_handle_ = StatsHub::global().add([this] { publish(); });
}

RateGauge::~RateGauge() { StatsHub::global().remove(hub_handle_); }

void RateGauge::record(double n) {
  if (cells_.empty() || !cells_.front().gauge->enabled()) return;
  for (Cell& cell : cells_) cell.estimator->record(n);
}

void RateGauge::publish() {
  for (Cell& cell : cells_) cell.gauge->set(cell.estimator->rate());
}

// ----------------------------------------------------------- QuantileGauges

QuantileGauges::QuantileGauges(MetricsRegistry& registry,
                               const std::string& name,
                               const std::string& help,
                               std::vector<double> quantiles,
                               const Labels& labels) {
  for (double q : quantiles) {
    Labels cell_labels = labels;
    cell_labels.emplace_back("quantile", format_number(q));
    cells_.push_back(Cell{std::make_unique<P2Quantile>(q),
                          &registry.gauge(name, help, cell_labels)});
  }
  hub_handle_ = StatsHub::global().add([this] { publish(); });
}

QuantileGauges::~QuantileGauges() { StatsHub::global().remove(hub_handle_); }

void QuantileGauges::observe(double v) {
  if (cells_.empty() || !cells_.front().gauge->enabled()) return;
  for (Cell& cell : cells_) cell.estimator->observe(v);
}

void QuantileGauges::publish() {
  for (Cell& cell : cells_) {
    double v = cell.estimator->value();
    if (!std::isnan(v)) cell.gauge->set(v);
  }
}

}  // namespace netobs::obs
