// Big-endian byte serialisation primitives used by the TLS, DNS and QUIC
// codecs. Network protocols are big-endian throughout; all multi-byte
// accessors here are network order.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace netobs::net {

/// Thrown by ByteReader (and the protocol parsers built on it) when the
/// input is truncated or structurally invalid.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only big-endian serialiser.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u24(std::uint32_t v);  ///< low 24 bits; throws if v >= 2^24
  void put_u32(std::uint32_t v);
  void put_bytes(std::span<const std::uint8_t> bytes);
  void put_bytes(std::string_view s);

  /// Writes a placeholder length field of `width` bytes (1, 2 or 3) and
  /// returns a token; call patch_length(token) after writing the body to
  /// backfill the actual byte count. Mirrors TLS's nested length-prefixed
  /// vectors.
  std::size_t begin_length(int width);
  void patch_length(std::size_t token);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  struct Pending {
    std::size_t offset;
    int width;
  };
  std::vector<std::uint8_t> buf_;
  std::vector<Pending> pending_;
};

/// Bounds-checked big-endian reader over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u24();
  std::uint32_t get_u32();
  std::span<const std::uint8_t> get_bytes(std::size_t n);
  std::string get_string(std::size_t n);

  /// Returns a sub-reader over the next n bytes and advances past them.
  ByteReader sub_reader(std::size_t n);

  void skip(std::size_t n);
  std::size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// QUIC variable-length integer (RFC 9000 §16): 2-bit length prefix,
/// big-endian, max 62-bit values.
void put_varint(ByteWriter& w, std::uint64_t value);
std::uint64_t get_varint(ByteReader& r);
/// Encoded size of a varint value.
std::size_t varint_size(std::uint64_t value);

/// Hex string ("16 03 01 ..." tolerant of whitespace) -> bytes, for fixtures.
std::vector<std::uint8_t> from_hex(std::string_view hex);

/// Bytes -> lowercase hex (no separators).
std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace netobs::net
