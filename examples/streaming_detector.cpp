// Section 6.2, cluster 2: "our algorithm could be used to identify websites
// hosting illegal streaming ... as those services frequently move to new
// hostnames in order to evade justice".
//
// This example builds that detector: given a handful of *known* streaming
// hostnames, it ranks every other hostname in the embedding by similarity
// to the seed set's centroid. The synthetic world stands in for the real
// trace: we pick one topic as "sports streaming", seed the detector with
// its three most popular sites, and check how well the ranking surfaces
// the topic's other (unlabeled, never-seeded) hostnames — including brand
// new mirror domains nobody has categorised.
#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "embedding/knn.hpp"
#include "embedding/sgns.hpp"
#include "obs/log.hpp"
#include "profile/session.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  constexpr const char* kSite = "examples.streaming_detector";
  auto cfg = bench::parse_config(argc, argv, {800, 2, 17, ""});
  auto server = bench::serve_telemetry(cfg);
  if (server) server->health().set_status("model", false, "not trained yet");
  auto world = bench::make_world(cfg);
  std::cout << "== hostname-similarity detector (Section 6.2, cluster 2) ==\n";

  // Train on the observed trace (as the back-end would).
  synth::BrowsingSimulator sim(*world.universe, *world.population);
  auto trace = sim.simulate(0, cfg.days);
  profile::SessionStore store(10 * util::kDay);
  store.ingest(trace.events);

  embedding::SgnsParams params;
  params.epochs = 15;
  params.seed = cfg.seed;
  embedding::VocabularyParams vp;
  vp.min_count = 2;
  embedding::SgnsTrainer trainer(params, vp);
  std::vector<embedding::Sequence> corpus;
  for (std::int64_t d = 0; d < cfg.days; ++d) {
    auto day = store.day_sequences(d);
    corpus.insert(corpus.end(), day.begin(), day.end());
  }
  auto model = trainer.fit(corpus);
  embedding::CosineKnnIndex index(model);
  std::cout << "model: " << model.size() << " hostnames\n";
  if (server) server->health().set_status("model", true, "trained");
  obs::log_info(kSite, "embedding trained",
                {{"hostnames", std::to_string(model.size())},
                 {"sequences", std::to_string(corpus.size())}});

  // "Streaming" = the topic with the most in-vocabulary sites.
  std::size_t topic = 0;
  std::size_t best = 0;
  for (std::size_t t = 0; t < world.universe->topic_count(); ++t) {
    std::size_t in_vocab = 0;
    for (std::size_t site : world.universe->sites_of_topic(t)) {
      if (model.id_of(world.universe->host(site).name)) ++in_vocab;
    }
    if (in_vocab > best) {
      best = in_vocab;
      topic = t;
    }
  }
  const auto& sites = world.universe->sites_of_topic(topic);

  // Seeds: the topic's three most popular sites (the "known" streamers).
  std::vector<std::string> seeds;
  for (std::size_t site : sites) {
    const auto& name = world.universe->host(site).name;
    if (model.id_of(name) && seeds.size() < 3) seeds.push_back(name);
  }
  std::cout << "seed hostnames:";
  for (const auto& s : seeds) std::cout << " " << s;
  std::cout << "\n";

  // Centroid of the seeds -> ranked candidates.
  std::vector<float> centroid(model.dim(), 0.0F);
  for (const auto& s : seeds) {
    auto v = *model.vector_of(s);
    for (std::size_t i = 0; i < centroid.size(); ++i) centroid[i] += v[i];
  }
  auto candidates = index.query(centroid, 25);

  // Ground truth check: how many candidates are actually same-topic sites
  // or their satellites (mirror infrastructure)?
  auto is_target = [&](const std::string& host) {
    std::size_t idx = world.universe->index_of(host);
    const auto& h = world.universe->host(idx);
    if (h.kind == synth::HostKind::kSatellite) {
      const auto& owner = world.universe->host(h.owner);
      if (owner.topic_mix.empty()) return false;
      return static_cast<std::size_t>(
                 std::max_element(owner.topic_mix.begin(),
                                  owner.topic_mix.end()) -
                 owner.topic_mix.begin()) == topic;
    }
    if (h.topic_mix.empty()) return false;
    return static_cast<std::size_t>(
               std::max_element(h.topic_mix.begin(), h.topic_mix.end()) -
               h.topic_mix.begin()) == topic;
  };

  std::size_t hits = 0;
  std::size_t rank = 0;
  std::cout << "\ncandidate mirror hostnames (cosine to seed centroid):\n";
  for (const auto& nb : candidates) {
    const std::string& host = model.token(nb.id);
    bool seeded =
        std::find(seeds.begin(), seeds.end(), host) != seeds.end();
    if (seeded) continue;
    bool target = is_target(host);
    hits += target ? 1 : 0;
    if (rank++ < 12) {
      std::cout << util::format("  %-28s sim=%.3f  %s\n", host.c_str(),
                                nb.similarity,
                                target ? "[same service cluster]" : "");
    }
  }
  std::size_t scored = candidates.size() >= seeds.size()
                           ? candidates.size() - seeds.size()
                           : 0;
  double precision =
      scored == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(scored);
  double base_rate = static_cast<double>(sites.size()) /
                     static_cast<double>(world.universe->size());
  std::cout << util::format(
      "\nprecision@%zu = %.2f (random baseline %.3f): the embedding finds\n"
      "the service's other hostnames from co-request behaviour alone.\n",
      scored, precision, base_rate);
  obs::log_info(kSite, "detector scored",
                {{"hits", std::to_string(hits)},
                 {"scored", std::to_string(scored)}});
  bench::dump_telemetry(cfg);
  bench::hold_if_serving(server);
  return 0;
}
