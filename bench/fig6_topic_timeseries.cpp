// Figure 6 — daily topic shares of (a) websites visited, (b) ads served by
// ad-networks, (c) ads selected by the eavesdropper.
//
// Paper: visited-website topics are dominated by a stable block (Online
// Communities / Arts & Entertainment / People & Society / Jobs & Education
// — the universal hosts); ad topic mixes differ from the browsing mix and
// between the two serving systems; topics prominent in (a) are much less
// prominent in (b)/(c) because one page visit generates many connections.
#include <iostream>

#include "ads/experiment.hpp"
#include "bench/common.hpp"
#include "eval/report.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

void print_series(const std::string& title,
                  const std::vector<std::vector<double>>& counts,
                  const netobs::ontology::CategorySpace& space,
                  std::size_t top_n) {
  using namespace netobs;
  auto shares = eval::to_percentage_shares(counts);
  auto ranked = eval::mean_shares_descending(shares);
  util::print_banner(std::cout, title);

  std::size_t n = std::min(top_n, ranked.size());
  std::vector<std::string> headers = {"topic", "mean %"};
  std::size_t days = shares.size();
  for (std::size_t d = 0; d < days; d += std::max<std::size_t>(1, days / 6)) {
    headers.push_back("day " + std::to_string(d));
  }
  util::Table table(headers);
  for (std::size_t i = 0; i < n; ++i) {
    auto [topic, mean_share] = ranked[i];
    std::vector<std::string> row = {
        space.name(space.top_level_ids()[topic]),
        util::format("%.1f", mean_share)};
    for (std::size_t d = 0; d < days;
         d += std::max<std::size_t>(1, days / 6)) {
      row.push_back(util::format("%.1f", shares[d][topic]));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {1000, 5, 2021, ""});
  auto world = bench::make_world(cfg);
  util::print_banner(std::cout, "Figure 6: topic time series");
  bench::print_scale_note(cfg, world);

  ads::ExperimentParams params;
  params.collection_days = 2;
  params.profiling_days = cfg.days;
  params.seed = cfg.seed;
  // Same scale-adapted profiling knobs as ctr_experiment (see DESIGN.md).
  params.service.profiler.knn = 50;
  params.service.profiler.aggregation = profile::Aggregation::kNormalizedMean;
  params.service.vocab.min_count = 2;
  params.service.vocab.subsample_threshold = 1e-4;
  params.service.sgns.epochs = 15;
  params.replace_prob = 0.35;
  ads::ExperimentRunner runner(*world.universe, *world.population,
                               synth::BrowsingParams(), params);
  auto result = runner.run();

  print_series("Figure 6a: websites visited (labeled connections)",
               result.topics.visited, *world.space, 10);
  print_series("Figure 6b: ads served by ad-networks",
               result.topics.original_ads, *world.space, 10);
  print_series("Figure 6c: ads selected by the eavesdropper",
               result.topics.eavesdropper_ads, *world.space, 10);

  // Shape check: correlation between the daily-mean share vectors.
  auto mean_vec = [&](const std::vector<std::vector<double>>& counts) {
    auto shares = eval::to_percentage_shares(counts);
    std::vector<double> mean(world.universe->topic_count(), 0.0);
    for (const auto& day : shares) {
      for (std::size_t t = 0; t < mean.size(); ++t) mean[t] += day[t];
    }
    for (double& m : mean) m /= static_cast<double>(shares.size());
    return mean;
  };
  auto visited = mean_vec(result.topics.visited);
  auto original = mean_vec(result.topics.original_ads);
  auto eaves = mean_vec(result.topics.eavesdropper_ads);

  util::Table corr({"pair", "Pearson r"});
  corr.add_row({"visited vs original ads",
                util::format("%.3f", util::pearson(visited, original))});
  corr.add_row({"visited vs eavesdropper ads",
                util::format("%.3f", util::pearson(visited, eaves))});
  corr.add_row({"original vs eavesdropper ads",
                util::format("%.3f", util::pearson(original, eaves))});
  corr.print(std::cout);

  std::cout << "\nshape checks: a stable dominant block in 6a (universal\n"
               "hosts), ad mixes differing from the browsing mix (r < 1),\n"
               "and day-to-day stability of 6a vs more campaign-driven\n"
               "variation in 6b/6c.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
