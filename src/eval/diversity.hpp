// User-diversity analysis — Figures 2 and 3.
//
// "Core XX" is the set of items (hostnames in Fig. 2, categories in Fig. 3)
// touched by at least XX% of the users; items inside a core are background
// noise, items outside are what lets a profiler tell users apart. The
// analysis reports each core's size and the CCDF of the per-user count of
// items outside the core, plus the CCDF of total items ("All Domains").
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.hpp"

namespace netobs::eval {

struct CoreResult {
  double threshold = 0.0;              ///< e.g. 0.8 for "Core 80"
  std::vector<std::uint64_t> members;  ///< items in the core
  std::vector<util::CcdfPoint> outside_ccdf;
  double users_with_zero_outside = 0.0;  ///< fraction of users (Section 6.1)
};

struct DiversityResult {
  std::size_t distinct_items = 0;
  std::vector<util::CcdfPoint> all_ccdf;  ///< per-user total item counts
  std::vector<CoreResult> cores;

  /// Reads "at least `fraction` of users touch >= X items outside core k";
  /// k == SIZE_MAX reads the all-items curve.
  double items_at_user_fraction(std::size_t core_index,
                                double fraction) const;
};

/// per_user_items[u] = distinct item ids user u touched over the period
/// (duplicates tolerated). thresholds default to the paper's
/// {0.8, 0.6, 0.4, 0.2}.
DiversityResult analyze_diversity(
    const std::vector<std::vector<std::uint64_t>>& per_user_items,
    std::vector<double> thresholds = {0.8, 0.6, 0.4, 0.2});

}  // namespace netobs::eval
