// Passive observers: turn raw packets into HostnameEvents.
//
// SniObserver reassembles the head of each TCP flow until the first TLS
// record is complete, extracts the SNI, and emits one event per flow —
// matching what an on-path eavesdropper learns from HTTPS (Section 7.2).
// DnsObserver does the same for resolver-bound UDP queries.
//
// Both demultiplex packets to observer-side user ids through a UserDemux
// whose fidelity depends on the configured vantage point.
//
// Internally each observer is a thin wrapper over a *flow engine*
// (SniFlowEngine / DnsFlowEngine): allocation-free cores that emit events
// as string views and keep their per-flow state in an open-addressed
// FlowTable. The sharded ingest pipeline (net/ingest.hpp) instantiates the
// same engines — one pair per shard — so the single-threaded observers and
// the multi-threaded pipeline run byte-identical logic.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/dns.hpp"
#include "net/flow_table.hpp"
#include "net/packet.hpp"
#include "util/mem_estimate.hpp"

namespace netobs::net {

/// Where the eavesdropper sits (Section 7.2).
enum class Vantage {
  kWifiProvider,    ///< sees MAC addresses: perfect per-device separation
  kMobileOperator,  ///< sees IMSI: perfect per-subscriber separation
  kLandlineIsp,     ///< sees only source IPs: users behind one NAT collapse
};

/// Maps packets to stable observer-side user ids according to the vantage.
/// With the default (first_id=0, id_stride=1) ids are dense (0, 1, 2, ...)
/// in order of first appearance. The sharded pipeline gives shard `s` of `S`
/// a demux with (first_id=s, id_stride=S): since every sender is routed to
/// exactly one shard by identity_key(), the strided sequences are disjoint
/// and ids stay collision-free without any cross-thread coordination.
class UserDemux {
 public:
  explicit UserDemux(Vantage vantage, std::uint32_t first_id = 0,
                     std::uint32_t id_stride = 1)
      : vantage_(vantage),
        next_id_(first_id),
        stride_(id_stride == 0 ? 1 : id_stride) {}

  std::uint32_t user_of(const Packet& packet);

  /// The mixed, vantage-dependent identity key of a packet's sender — what
  /// user ids are keyed on. The ingest pipeline shards packets by this key,
  /// which makes both flow state *and* user state shard-private (a flow's
  /// five-tuple shares its src identity with its sender).
  static std::uint64_t identity_key(const Packet& packet, Vantage vantage);

  std::size_t distinct_users() const { return ids_.size(); }
  Vantage vantage() const { return vantage_; }

  /// Estimated heap footprint of the identity-key → user-id map.
  std::size_t memory_bytes() const {
    return util::unordered_map_bytes(ids_);
  }

 private:
  Vantage vantage_;
  std::uint32_t next_id_;
  std::uint32_t stride_;
  std::unordered_map<std::uint64_t, std::uint32_t> ids_;
};

/// Counters exposed by the observers, for the coverage tables.
struct ObserverStats {
  std::size_t packets = 0;
  std::size_t flows = 0;
  std::size_t events = 0;         ///< hostnames extracted
  std::size_t no_sni = 0;         ///< complete ClientHello without SNI
  std::size_t not_tls = 0;        ///< flow did not start with TLS
  std::size_t incomplete = 0;     ///< flows still waiting for bytes
  std::size_t evicted = 0;        ///< abandoned flows dropped by the cap
  std::size_t idle_evicted = 0;   ///< flows aged out by the idle timeout
  std::size_t deduped = 0;        ///< duplicate DNS queries suppressed
};

struct SniObserverOptions {
  std::size_t max_pending_flows = 1 << 16;  ///< cap on unresolved flows
  std::size_t max_buffered_bytes = 16384;   ///< per-flow reassembly cap
  /// When a well-formed ClientHello carries no SNI (encrypted SNI / ECH),
  /// emit a pseudo-hostname derived from the destination IP instead.
  /// Section 7.2: "encrypted SNI ... do not hide the IP address that may be
  /// used by the profiling algorithm" — the representation learner treats
  /// the IP token like any other hostname.
  bool ip_fallback = false;
  /// Flows idle for longer than this (sim-time seconds) are swept from the
  /// table — pending *and* resolved entries, so a month-long capture cannot
  /// grow the resolved set without bound. 0 disables idle eviction.
  util::Timestamp idle_timeout = 60;
  /// Minimum sim-time between idle sweeps (a sweep walks the whole table).
  util::Timestamp sweep_interval = 15;
};

struct DnsObserverOptions {
  /// A query identical to one already seen on the same flow within this
  /// window (sim-time seconds) is suppressed — resolvers are asked the same
  /// qname in bursts (A + AAAA retries, renewals) and the profiler should
  /// count intent, not retransmissions. 0 disables deduplication.
  util::Timestamp dedupe_window = 5;
  /// Bound on the dedupe memory; when exceeded, entries older than the
  /// window are pruned (duplicates may then be re-emitted, never lost).
  std::size_t max_dedupe_entries = 1 << 16;
};

/// The pseudo-hostname the IP fallback emits for a destination address.
std::string ip_pseudo_hostname(std::uint32_t dst_ip);

/// A hostname observation whose name is a *view* into engine-owned scratch
/// storage: valid only until the next call into the engine that produced
/// it. The ingest pipeline interns the view immediately; the observer
/// wrappers copy it into an owning HostnameEvent.
struct RawEvent {
  std::uint32_t user_id = 0;
  util::Timestamp timestamp = 0;
  std::string_view hostname;
};

/// Allocation-free SNI-extraction core. Single-threaded; the caller owns
/// the demux and stats so several engines can share one (observer wrappers)
/// or each own a private pair (pipeline shards).
class SniFlowEngine {
 public:
  /// `registry_metrics` selects per-packet obs-registry updates (observer
  /// wrappers) vs none (pipeline workers, which batch-sync stat deltas).
  SniFlowEngine(UserDemux& demux, ObserverStats& stats,
                SniObserverOptions options, bool registry_metrics);

  /// Feeds one packet; the returned view is valid until the next call.
  std::optional<RawEvent> observe(const Packet& packet);

  std::size_t pending_flows() const { return table_.pending(); }
  std::size_t tracked_flows() const { return table_.size(); }
  const FlowTable& table() const { return table_; }

  /// Heap footprint of per-flow state (table slots, reassembly buffers,
  /// scratch strings).
  std::size_t memory_bytes() const {
    return table_.memory_bytes() + scratch_.capacity() + host_buf_.capacity();
  }

  /// Repoints the engine at a new demux/stats pair (used by the observer
  /// wrappers' move operations, whose members the engine refers to).
  void rebind(UserDemux& demux, ObserverStats& stats) {
    demux_ = &demux;
    stats_ = &stats;
  }

 private:
  void maybe_sweep(util::Timestamp now);

  SniObserverOptions options_;
  UserDemux* demux_;
  ObserverStats* stats_;
  bool registry_metrics_;
  FlowTable table_;
  std::string scratch_;    ///< lowercase scratch for extract_sni_view
  std::string host_buf_;   ///< owns QUIC / ip-fallback hostnames
  util::Timestamp max_ts_ = 0;
  util::Timestamp last_sweep_ = 0;
  bool saw_packet_ = false;
};

/// Allocation-light DNS-extraction core (the parsed message is reused
/// across calls; qname views point into it).
class DnsFlowEngine {
 public:
  DnsFlowEngine(UserDemux& demux, ObserverStats& stats,
                DnsObserverOptions options, bool registry_metrics);

  /// Appends one RawEvent per non-duplicate question in a query datagram.
  /// Views are valid until the next call.
  void observe(const Packet& packet, std::vector<RawEvent>& out);

  /// See SniFlowEngine::rebind.
  void rebind(UserDemux& demux, ObserverStats& stats) {
    demux_ = &demux;
    stats_ = &stats;
  }

  /// Estimated heap footprint of the dedupe map (the parsed-message scratch
  /// is bounded by one datagram and not counted).
  std::size_t memory_bytes() const {
    return util::unordered_map_bytes(recent_);
  }

 private:
  DnsObserverOptions options_;
  UserDemux* demux_;
  ObserverStats* stats_;
  bool registry_metrics_;
  DnsMessage msg_;
  /// (flow ^ qname) hash -> timestamp of the last emitted occurrence.
  std::unordered_map<std::uint64_t, util::Timestamp> recent_;
};

/// Extracts SNI hostnames from TCP flows.
class SniObserver {
 public:
  explicit SniObserver(Vantage vantage,
                       SniObserverOptions options = SniObserverOptions());

  SniObserver(SniObserver&& other) noexcept
      : demux_(std::move(other.demux_)),
        stats_(other.stats_),
        engine_(std::move(other.engine_)) {
    engine_.rebind(demux_, stats_);
  }
  SniObserver& operator=(SniObserver&& other) noexcept {
    demux_ = std::move(other.demux_);
    stats_ = other.stats_;
    engine_ = std::move(other.engine_);
    engine_.rebind(demux_, stats_);
    return *this;
  }

  /// Feeds one packet; returns an event when this packet completes a
  /// ClientHello carrying an SNI.
  std::optional<HostnameEvent> observe(const Packet& packet);

  /// Convenience: feeds a packet vector and collects all events.
  std::vector<HostnameEvent> observe_all(const std::vector<Packet>& packets);

  const ObserverStats& stats() const { return stats_; }
  std::size_t pending_flows() const { return engine_.pending_flows(); }
  /// All tracked flows, resolved ones included (bounded by idle eviction).
  std::size_t tracked_flows() const { return engine_.tracked_flows(); }
  UserDemux& demux() { return demux_; }

 private:
  UserDemux demux_;
  ObserverStats stats_;
  SniFlowEngine engine_;
};

/// Extracts QNAMEs from UDP datagrams addressed to port 53.
class DnsObserver {
 public:
  explicit DnsObserver(Vantage vantage,
                       DnsObserverOptions options = DnsObserverOptions());

  DnsObserver(DnsObserver&& other) noexcept
      : demux_(std::move(other.demux_)),
        stats_(other.stats_),
        engine_(std::move(other.engine_)),
        raw_(std::move(other.raw_)) {
    engine_.rebind(demux_, stats_);
  }
  DnsObserver& operator=(DnsObserver&& other) noexcept {
    demux_ = std::move(other.demux_);
    stats_ = other.stats_;
    engine_ = std::move(other.engine_);
    raw_ = std::move(other.raw_);
    engine_.rebind(demux_, stats_);
    return *this;
  }

  /// Returns one event per non-duplicate question in a query datagram.
  std::vector<HostnameEvent> observe(const Packet& packet);

  const ObserverStats& stats() const { return stats_; }
  UserDemux& demux() { return demux_; }

 private:
  UserDemux demux_;
  ObserverStats stats_;
  DnsFlowEngine engine_;
  std::vector<RawEvent> raw_;
};

}  // namespace netobs::net
