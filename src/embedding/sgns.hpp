// SKIPGRAM with negative sampling (SGNS) over hostname sequences — the
// representation-learning algorithm of Section 4.1.
//
// For every window of size 2m+1 moved over a user's hostname sequence the
// trainer minimises the log loss of Eq. 2:
//
//   sum_j [ log sigma(h_c . h'_ctx) + K * E_{h_k ~ P_D} log sigma(-h_c . h'_k) ]
//
// with h from the central matrix W, h' from the context matrix W', and
// negatives drawn from the empirical unigram^0.75 distribution. All
// parameters are learned with SGD (linearly decaying rate, word2vec
// schedule). Hyperparameter defaults follow the paper's choice of GENSIM
// defaults: d=100, window 5 (m=2), K=5.
//
// Training is "fully parallelizable" (Section 4.1): sequences are sharded
// across `threads` workers which update the shared matrices lock-free
// (Hogwild), the standard word2vec trick. Workers are dispatched onto a
// util::ThreadPool — the caller's (so a daily retrain reuses the service
// pool) or one owned pool created once per fit() — so an epoch costs a
// task hand-off, not thread spawn/join. threads == 1 runs the worker
// inline and is bit-identical run to run (the golden-digest oracle of the
// train bench); threads > 1 is Hogwild and only statistically
// reproducible. The linear LR schedule reads a batched global token
// counter, so decay is monotone and thread-count independent in
// expectation; epoch_losses() at different thread counts agree within a
// small tolerance, not bitwise.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "embedding/matrix.hpp"
#include "embedding/vocabulary.hpp"

namespace netobs::util {
class ThreadPool;
}

namespace netobs::embedding {

/// Training objective: the paper uses SKIPGRAM; CBOW (predict the center
/// from the averaged context) is provided as the standard ablation.
enum class SgnsMode { kSkipGram, kCbow };

struct SgnsParams {
  std::size_t dim = 100;     ///< d, embedding dimensionality
  int context_radius = 2;    ///< m; window size is 2m+1 = 5
  int negatives = 5;         ///< K negative samples per (center, context)
  int epochs = 5;
  float lr_start = 0.025F;
  float lr_min = 1e-4F;
  /// word2vec-style dynamic windows: per center, the effective radius is
  /// uniform in [1, context_radius], weighting near neighbours higher.
  bool dynamic_window = true;
  SgnsMode mode = SgnsMode::kSkipGram;
  std::size_t threads = 1;
  std::uint64_t seed = 1;
};

/// A trained hostname embedding model: token index + the two matrices.
class HostEmbedding {
 public:
  HostEmbedding() = default;
  HostEmbedding(std::vector<std::string> tokens, EmbeddingMatrix central,
                EmbeddingMatrix context);

  std::size_t size() const { return tokens_.size(); }
  std::size_t dim() const { return central_.dim(); }

  std::optional<TokenId> id_of(const std::string& host) const;
  const std::string& token(TokenId id) const { return tokens_.at(id); }
  const std::vector<std::string>& tokens() const { return tokens_; }

  /// Central representation h (the one used for profiling).
  std::span<const float> vector_of(TokenId id) const {
    return central_.row(id);
  }
  /// Central representation by hostname; nullopt when out of vocabulary.
  std::optional<std::span<const float>> vector_of(
      const std::string& host) const;

  /// Context representation h'.
  std::span<const float> context_vector_of(TokenId id) const {
    return context_.row(id);
  }

  const EmbeddingMatrix& central() const { return central_; }
  const EmbeddingMatrix& context() const { return context_; }

  /// Binary round-trip (token table + both matrices).
  void save(std::ostream& os) const;
  static HostEmbedding load(std::istream& is);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, TokenId> index_;
  EmbeddingMatrix central_;
  EmbeddingMatrix context_;
};

/// SGD trainer producing HostEmbeddings from hostname sequences.
class SgnsTrainer {
 public:
  explicit SgnsTrainer(SgnsParams params = SgnsParams(),
                       VocabularyParams vocab_params = VocabularyParams());

  /// Trains a fresh model on the corpus (one Sequence per user-session or
  /// user-day, as in Section 5.4's daily retraining). `pool` (optional)
  /// carries the params().threads Hogwild workers; without one, a pool is
  /// created once per fit when threads > 1. threads == 1 never touches a
  /// pool and is bit-identical run to run.
  HostEmbedding fit(const std::vector<Sequence>& corpus,
                    util::ThreadPool* pool = nullptr);

  /// Warm-start training: rows of hosts also present in `previous` are
  /// initialised from that model before training (Section 5.4 notes the
  /// training window is configurable; warm-starting carries knowledge of
  /// hosts that are sparse today but were seen before). New hosts are
  /// initialised as in fit().
  HostEmbedding fit_warm(const std::vector<Sequence>& corpus,
                         const HostEmbedding& previous,
                         util::ThreadPool* pool = nullptr);

  /// Mean per-pair loss of each epoch of the last fit() call; strictly
  /// positive, expected to decrease on learnable data.
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }

  /// Wall time (seconds) of each epoch of the last fit() call, parallel to
  /// epoch_losses(). The same timings feed the registry histogram
  /// netobs_embedding_epoch_seconds.
  const std::vector<double>& epoch_durations() const {
    return epoch_durations_;
  }

  /// CPU seconds each worker spent inside its training jobs, summed over
  /// every epoch of the last fit() (CLOCK_THREAD_CPUTIME_ID, measured
  /// inside the job). On a box with fewer hardware threads than workers,
  /// wall time cannot show the parallel split — but
  /// total CPU(threads=1) / max over workers of this vector is the ideal
  /// speedup the sharding achieves, which the bench gate enforces.
  const std::vector<double>& worker_cpu_seconds() const {
    return worker_cpu_seconds_;
  }

  /// (center, context) pairs processed across all epochs of the last fit().
  std::uint64_t total_pairs() const { return total_pairs_; }

  /// total_pairs() over the summed epoch wall time of the last fit().
  double pairs_per_second() const { return pairs_per_second_; }

  const SgnsParams& params() const { return params_; }

 private:
  HostEmbedding train(const std::vector<Sequence>& corpus,
                      const HostEmbedding* previous, util::ThreadPool* pool);

  SgnsParams params_;
  VocabularyParams vocab_params_;
  std::vector<double> epoch_losses_;
  std::vector<double> epoch_durations_;
  std::vector<double> worker_cpu_seconds_;
  std::uint64_t total_pairs_ = 0;
  double pairs_per_second_ = 0.0;
};

}  // namespace netobs::embedding
