// Hostname interning for the line-rate ingest path.
//
// The observers extract the same hostnames over and over (the paper's 1329
// users produced ~600M connections against a 470K-hostname vocabulary —
// ~1300 repeats per name). InternPool maps each distinct string to a dense
// uint32 id exactly once, so everything downstream of the parser — the
// MPSC hand-off ring, the session store, the profiler — can move 16-byte
// PODs instead of owning strings.
//
// Concurrency contract (the shape the sharded ingest pipeline needs):
//   - intern() is thread-safe and sharded-write: the string space is split
//     across `shards` independently locked maps, so workers interning
//     disjoint hostname sets rarely contend;
//   - name(id) is lock-free shared-read: id -> string resolution walks an
//     append-only chunked directory of atomic pointers, never taking a
//     lock, so the single consumer can resolve while workers intern;
//   - ids are dense (0, 1, 2, ... in allocation order) and never reused,
//     which makes them directly usable as indices into side tables and
//     resolvable against the embedding Vocabulary via
//     `vocab.id_of(pool.name(id))`.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace netobs::util {

class InternPool {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalidId = 0xFFFFFFFFu;

  /// `shards` is rounded up to a power of two (>= 1).
  explicit InternPool(std::size_t shards = 8);
  ~InternPool();

  InternPool(const InternPool&) = delete;
  InternPool& operator=(const InternPool&) = delete;

  /// Returns the dense id of `s`, interning it on first sight. Thread-safe;
  /// two racing interns of the same string agree on one id.
  Id intern(std::string_view s);

  /// Id of an already-interned string, or nullopt. Thread-safe.
  std::optional<Id> find(std::string_view s) const;

  /// The interned string for a previously returned id. Lock-free; safe to
  /// call concurrently with intern(). Throws std::out_of_range for ids this
  /// pool never handed out.
  const std::string& name(Id id) const;

  /// Number of distinct strings interned so far.
  std::size_t size() const {
    return next_id_.load(std::memory_order_acquire);
  }

  /// intern() calls that found the string already present / that inserted.
  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return next_id_.load(std::memory_order_relaxed);
  }

  /// Approximate heap footprint of the pool: interned strings (deque slots
  /// plus spilled heap), index map nodes, and id-directory chunks. Tracked
  /// incrementally with relaxed atomics; safe to read from any thread.
  std::size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  // id -> string directory: fixed array of lazily allocated chunks, so
  // name() is two acquire loads with no lock and ids stay stable across
  // growth (no vector reallocation to race on).
  static constexpr std::size_t kChunkBits = 12;  // 4096 strings per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = 4096;  // 16.7M distinct strings

  struct Chunk {
    std::atomic<const std::string*> slots[kChunkSize];
    Chunk() {
      for (auto& s : slots) s.store(nullptr, std::memory_order_relaxed);
    }
  };

  struct Shard {
    std::mutex mutex;
    // Values index into `names`; the deque gives pointer stability so the
    // directory can publish raw pointers while the map grows.
    std::unordered_map<std::string_view, Id> index;
    std::deque<std::string> names;
    std::size_t bucket_bytes = 0;  ///< last accounted index bucket array
  };

  Shard& shard_of(std::string_view s) const;
  void publish(Id id, const std::string* name);

  std::size_t shard_mask_;
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<std::atomic<Chunk*>[]> chunks_;
  std::mutex chunk_alloc_mutex_;
  std::atomic<Id> next_id_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace netobs::util
