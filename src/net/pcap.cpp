#include "net/pcap.hpp"

#include <istream>
#include <ostream>

#include "net/bytes.hpp"
#include "net/frame.hpp"

namespace netobs::net {

namespace {

constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;
constexpr std::uint32_t kPcapMagicSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;

void write_le32(std::ostream& os, std::uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  os.write(b, 4);
}

void write_le16(std::ostream& os, std::uint16_t v) {
  char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
  os.write(b, 2);
}

std::uint32_t read_u32(std::istream& is, bool swapped) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  if (!is) throw ParseError("pcap: truncated u32");
  if (swapped) {
    return (static_cast<std::uint32_t>(b[0]) << 24) |
           (static_cast<std::uint32_t>(b[1]) << 16) |
           (static_cast<std::uint32_t>(b[2]) << 8) | b[3];
  }
  return (static_cast<std::uint32_t>(b[3]) << 24) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[1]) << 8) | b[0];
}

}  // namespace

void write_pcap(std::ostream& os, const std::vector<Packet>& packets) {
  write_le32(os, kPcapMagic);
  write_le16(os, 2);  // version major
  write_le16(os, 4);  // version minor
  write_le32(os, 0);  // thiszone
  write_le32(os, 0);  // sigfigs
  write_le32(os, 65535);  // snaplen
  write_le32(os, kLinkTypeEthernet);

  std::uint32_t seq = 1;
  for (const auto& packet : packets) {
    FrameOptions opts;
    opts.tcp_seq = seq++;
    auto frame = encapsulate(packet, opts);
    write_le32(os, static_cast<std::uint32_t>(packet.timestamp));
    write_le32(os, 0);  // microseconds
    write_le32(os, static_cast<std::uint32_t>(frame.size()));  // captured
    write_le32(os, static_cast<std::uint32_t>(frame.size()));  // on wire
    os.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  }
  if (!os) throw std::runtime_error("write_pcap: write failed");
}

std::vector<Packet> read_pcap(std::istream& is) {
  bool swapped = false;
  std::uint32_t magic = read_u32(is, false);
  if (magic == kPcapMagicSwapped) {
    swapped = true;
  } else if (magic != kPcapMagic) {
    throw ParseError("read_pcap: bad magic");
  }
  // Version, zone, sigfigs, snaplen.
  read_u32(is, swapped);
  read_u32(is, swapped);
  read_u32(is, swapped);
  read_u32(is, swapped);
  std::uint32_t link_type = read_u32(is, swapped);
  if (link_type != kLinkTypeEthernet) {
    throw ParseError("read_pcap: unsupported link type " +
                     std::to_string(link_type));
  }

  std::vector<Packet> packets;
  for (;;) {
    is.peek();
    if (is.eof()) break;
    std::uint32_t ts_sec = read_u32(is, swapped);
    read_u32(is, swapped);  // microseconds
    std::uint32_t cap_len = read_u32(is, swapped);
    std::uint32_t wire_len = read_u32(is, swapped);
    if (cap_len > (1U << 24) || cap_len > wire_len + 0U) {
      throw ParseError("read_pcap: implausible record length");
    }
    std::vector<std::uint8_t> frame(cap_len);
    is.read(reinterpret_cast<char*>(frame.data()), cap_len);
    if (!is) throw ParseError("read_pcap: truncated frame");
    auto packet = decapsulate(frame);
    if (!packet) continue;  // non-IPv4 or corrupt frame: skip, as a tap does
    packet->timestamp = static_cast<util::Timestamp>(ts_sec);
    packets.push_back(std::move(*packet));
  }
  return packets;
}

}  // namespace netobs::net
