#include "net/frame.hpp"

#include <stdexcept>

#include "net/bytes.hpp"

namespace netobs::net {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

namespace {

void put_mac(ByteWriter& w, std::uint64_t mac) {
  for (int i = 5; i >= 0; --i) {
    w.put_u8(static_cast<std::uint8_t>(mac >> (8 * i)));
  }
}

std::uint64_t read_mac(ByteReader& r) {
  std::uint64_t mac = 0;
  for (int i = 0; i < 6; ++i) mac = (mac << 8) | r.get_u8();
  return mac;
}

/// Pseudo-header + transport checksum (RFC 793 / RFC 768).
std::uint16_t transport_checksum(const FiveTuple& tuple,
                                 std::span<const std::uint8_t> segment) {
  ByteWriter pseudo;
  pseudo.put_u32(tuple.src_ip);
  pseudo.put_u32(tuple.dst_ip);
  pseudo.put_u8(0);
  pseudo.put_u8(static_cast<std::uint8_t>(tuple.proto));
  pseudo.put_u16(static_cast<std::uint16_t>(segment.size()));
  std::vector<std::uint8_t> buf = pseudo.take();
  buf.insert(buf.end(), segment.begin(), segment.end());
  return internet_checksum(buf);
}

}  // namespace

std::vector<std::uint8_t> encapsulate(const Packet& packet,
                                      const FrameOptions& options) {
  std::size_t transport_header = packet.tuple.proto == Transport::kTcp
                                     ? kTcpHeaderSize
                                     : kUdpHeaderSize;
  std::size_t ip_total =
      kIpv4HeaderSize + transport_header + packet.payload.size();
  if (ip_total > 0xFFFF) {
    throw std::length_error("encapsulate: payload exceeds IPv4 total length");
  }

  // --- Transport segment (header + payload), checksum patched after.
  ByteWriter seg;
  if (packet.tuple.proto == Transport::kTcp) {
    seg.put_u16(packet.tuple.src_port);
    seg.put_u16(packet.tuple.dst_port);
    seg.put_u32(options.tcp_seq);
    seg.put_u32(0);            // ack
    seg.put_u8(0x50);          // data offset 5 words
    seg.put_u8(0x18);          // PSH|ACK
    seg.put_u16(0xFFFF);       // window
    seg.put_u16(0);            // checksum placeholder
    seg.put_u16(0);            // urgent
  } else {
    seg.put_u16(packet.tuple.src_port);
    seg.put_u16(packet.tuple.dst_port);
    seg.put_u16(static_cast<std::uint16_t>(kUdpHeaderSize +
                                           packet.payload.size()));
    seg.put_u16(0);  // checksum placeholder
  }
  seg.put_bytes(packet.payload);
  std::vector<std::uint8_t> segment = seg.take();
  std::uint16_t tsum = transport_checksum(packet.tuple, segment);
  std::size_t csum_off = packet.tuple.proto == Transport::kTcp ? 16 : 6;
  segment[csum_off] = static_cast<std::uint8_t>(tsum >> 8);
  segment[csum_off + 1] = static_cast<std::uint8_t>(tsum);

  // --- IPv4 header.
  ByteWriter ip;
  ip.put_u8(0x45);
  ip.put_u8(0);
  ip.put_u16(static_cast<std::uint16_t>(ip_total));
  ip.put_u16(0);       // identification
  ip.put_u16(0x4000);  // DF
  ip.put_u8(options.ttl);
  ip.put_u8(static_cast<std::uint8_t>(packet.tuple.proto));
  ip.put_u16(0);  // checksum placeholder
  ip.put_u32(packet.tuple.src_ip);
  ip.put_u32(packet.tuple.dst_ip);
  std::vector<std::uint8_t> ip_header = ip.take();
  std::uint16_t isum = internet_checksum(ip_header);
  ip_header[10] = static_cast<std::uint8_t>(isum >> 8);
  ip_header[11] = static_cast<std::uint8_t>(isum);

  // --- Ethernet frame.
  ByteWriter frame;
  put_mac(frame, options.dst_mac);
  put_mac(frame, packet.src_mac);
  frame.put_u16(kEtherTypeIpv4);
  frame.put_bytes(ip_header);
  frame.put_bytes(segment);
  auto out = frame.take();
  // Minimum Ethernet payload padding (60 bytes without FCS).
  while (out.size() < 60) out.push_back(0);
  return out;
}

std::optional<Packet> decapsulate(std::span<const std::uint8_t> frame) {
  try {
    ByteReader r(frame);
    read_mac(r);  // dst
    std::uint64_t src_mac = read_mac(r);
    if (r.get_u16() != kEtherTypeIpv4) return std::nullopt;

    std::size_t ip_start = r.position();
    std::uint8_t ver_ihl = r.get_u8();
    if ((ver_ihl >> 4) != 4) return std::nullopt;
    std::size_t ihl = static_cast<std::size_t>(ver_ihl & 0x0F) * 4;
    if (ihl < kIpv4HeaderSize) return std::nullopt;
    r.skip(1);  // tos
    std::uint16_t total_len = r.get_u16();
    if (total_len < ihl || ip_start + total_len > frame.size()) {
      return std::nullopt;
    }
    r.skip(5);  // id, flags/frag, ttl
    std::uint8_t proto = r.get_u8();
    r.skip(2);  // checksum (verified over the whole header below)
    if (internet_checksum(frame.subspan(ip_start, ihl)) != 0) {
      return std::nullopt;
    }

    Packet packet;
    packet.src_mac = src_mac;
    packet.tuple.src_ip = r.get_u32();
    packet.tuple.dst_ip = r.get_u32();
    r.skip(ihl - kIpv4HeaderSize);  // options

    std::size_t seg_len = total_len - ihl;
    auto segment = frame.subspan(ip_start + ihl, seg_len);
    if (proto == static_cast<std::uint8_t>(Transport::kTcp)) {
      packet.tuple.proto = Transport::kTcp;
      ByteReader t(segment);
      packet.tuple.src_port = t.get_u16();
      packet.tuple.dst_port = t.get_u16();
      t.skip(8);
      std::size_t data_offset =
          static_cast<std::size_t>(t.get_u8() >> 4) * 4;
      if (data_offset < kTcpHeaderSize || data_offset > seg_len) {
        return std::nullopt;
      }
      if (transport_checksum(packet.tuple, segment) != 0) {
        return std::nullopt;
      }
      packet.payload.assign(segment.begin() + static_cast<long>(data_offset),
                            segment.end());
    } else if (proto == static_cast<std::uint8_t>(Transport::kUdp)) {
      packet.tuple.proto = Transport::kUdp;
      ByteReader t(segment);
      packet.tuple.src_port = t.get_u16();
      packet.tuple.dst_port = t.get_u16();
      std::uint16_t udp_len = t.get_u16();
      if (udp_len < kUdpHeaderSize || udp_len > seg_len) {
        return std::nullopt;
      }
      if (transport_checksum(packet.tuple,
                             segment.subspan(0, udp_len)) != 0) {
        return std::nullopt;
      }
      packet.payload.assign(
          segment.begin() + static_cast<long>(kUdpHeaderSize),
          segment.begin() + udp_len);
    } else {
      return std::nullopt;
    }
    return packet;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

}  // namespace netobs::net
