#include "embedding/ivf_index.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_stream.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

namespace netobs::embedding {

namespace {

struct IvfMetrics {
  obs::Counter& queries;
  obs::Counter& recall_samples;
  obs::Gauge& index_size;
  obs::Gauge& nlists;
  obs::Gauge& nprobe;
  obs::Gauge& probed_lists;
  obs::Gauge& candidate_pool;
  obs::Gauge& last_recall;
  obs::Gauge& build_seconds;
  obs::Gauge& build_kmeans_seconds;
  obs::Gauge& build_assign_seconds;
  obs::Gauge& build_encode_seconds;
  obs::QuantileGauges latency;
  /// Counters and gauges are atomic, but the P2 latency estimator is not;
  /// queries may run concurrently from many threads.
  std::mutex latency_mutex;

  static IvfMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static IvfMetrics m{
        reg.counter("netobs_embedding_ivf_queries_total",
                    "IVF approximate kNN queries answered"),
        reg.counter("netobs_embedding_ivf_recall_samples_total",
                    "Queries that also ran the exact sweep to sample recall"),
        reg.gauge("netobs_embedding_ivf_index_size",
                  "Rows in the most recently built IVF index"),
        reg.gauge("netobs_embedding_ivf_nlists",
                  "Coarse partitions in the most recently built IVF index"),
        reg.gauge("netobs_embedding_ivf_nprobe",
                  "Configured partitions scanned per query"),
        reg.gauge("netobs_embedding_ivf_probed_lists",
                  "Partitions actually scanned by the latest query"),
        reg.gauge("netobs_embedding_ivf_candidate_pool",
                  "Int8-stage candidates re-ranked by the latest query"),
        reg.gauge("netobs_embedding_ivf_last_recall",
                  "recall@n observed by the most recent recall sample"),
        reg.gauge("netobs_embedding_ivf_build_seconds",
                  "Wall seconds of the most recent IVF index build"),
        reg.gauge("netobs_embedding_ivf_build_kmeans_seconds",
                  "Lloyd-training seconds of the most recent build (0 = warm)"),
        reg.gauge("netobs_embedding_ivf_build_assign_seconds",
                  "Final all-rows assignment seconds of the most recent build"),
        reg.gauge("netobs_embedding_ivf_build_encode_seconds",
                  "Int8 list-encode seconds of the most recent build"),
        obs::QuantileGauges(reg, "netobs_embedding_ivf_query_latency_seconds",
                            "Latency quantiles of IVF kNN queries"),
    };
    return m;
  }
};

EmbeddingMatrix normalized_copy(const EmbeddingMatrix& matrix) {
  EmbeddingMatrix out = matrix;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    util::normalize(out.row(i));
  }
  return out;
}

/// Centroids / rows scored per dot_block call (see knn.cpp kScoreBlock).
constexpr std::size_t kScoreBlock = 64;

/// Fixed grain of the parallel int8 encode — rows per pool chunk. Purely a
/// scheduling knob: encode output is slot-addressed, so it cannot affect
/// the built lists.
constexpr std::size_t kEncodeGrain = 8192;

using PaddedVector =
    std::vector<float, netobs::util::simd::AlignedAllocator<float>>;

/// Per-row scalar quantization: code_j = round(x_j * 127 / max|x|), the
/// max-abs scheme that keeps the row's largest component at full int8
/// range. Rounding is ties-away-from-zero, spelled out in plain arithmetic
/// so every build of every tier emits identical codes. Pads [dim, qstride)
/// with zero so full-width integer kernels can sweep the pad.
float quantize_row(const float* src, std::size_t dim, std::int8_t* dst,
                   std::size_t qstride) {
  float max_abs = 0.0F;
  for (std::size_t j = 0; j < dim; ++j) {
    max_abs = std::max(max_abs, std::fabs(src[j]));
  }
  if (max_abs == 0.0F) {
    std::memset(dst, 0, qstride);
    return 0.0F;
  }
  const float inv = 127.0F / max_abs;
  for (std::size_t j = 0; j < dim; ++j) {
    float v = src[j] * inv;
    int q = static_cast<int>(v >= 0.0F ? v + 0.5F : v - 0.5F);
    q = std::clamp(q, -127, 127);
    dst[j] = static_cast<std::int8_t>(q);
  }
  std::memset(dst + dim, 0, qstride - dim);
  return max_abs / 127.0F;
}

}  // namespace

IvfKnnIndex::IvfKnnIndex(const EmbeddingMatrix& matrix, IvfParams params,
                         util::ThreadPool* pool)
    : normalized_(normalized_copy(matrix)), params_(params) {
  build(pool, nullptr);
}

IvfKnnIndex::IvfKnnIndex(const HostEmbedding& embedding, IvfParams params,
                         util::ThreadPool* pool)
    : normalized_(normalized_copy(embedding.central())), params_(params) {
  build(pool, nullptr);
}

IvfKnnIndex::IvfKnnIndex(const EmbeddingMatrix& matrix,
                         const EmbeddingMatrix& warm_centroids,
                         IvfParams params, util::ThreadPool* pool)
    : normalized_(normalized_copy(matrix)), params_(params) {
  if (warm_centroids.rows() == 0 || warm_centroids.dim() != normalized_.dim()) {
    throw std::invalid_argument(
        "IvfKnnIndex: warm centroids must be non-empty with matching dim");
  }
  build(pool, &warm_centroids);
}

void IvfKnnIndex::build(util::ThreadPool* pool,
                        const EmbeddingMatrix* warm_centroids) {
  const std::size_t rows = normalized_.rows();
  // int8 rows padded to the register width so the integer kernels can load
  // full 32-byte blocks; the pad is zero and contributes nothing.
  qstride_ = (normalized_.dim() + util::simd::kRowAlignBytes - 1) /
             util::simd::kRowAlignBytes * util::simd::kRowAlignBytes;
  if (rows == 0) {
    centroids_ = EmbeddingMatrix(0, normalized_.dim());
    return;
  }

  using Clock = std::chrono::steady_clock;
  auto seconds_since = [](Clock::time_point from) {
    return std::chrono::duration<double>(Clock::now() - from).count();
  };
  const auto build_start = Clock::now();
  build_stats_ = IvfBuildStats{};

  std::vector<std::uint32_t> assignment;
  if (warm_centroids != nullptr) {
    centroids_ = *warm_centroids;
    const auto assign_start = Clock::now();
    assignment = assign_to_centroids(normalized_, centroids_, pool,
                                     params_.assign_fanout);
    build_stats_.assign_s = seconds_since(assign_start);
  } else {
    std::size_t nlists = params_.nlists;
    if (nlists == 0) {
      // sqrt(rows) balances centroid-scan and list-scan cost: both are
      // O(sqrt(rows)) per probe at the default configuration.
      nlists = static_cast<std::size_t>(
          std::lround(std::sqrt(static_cast<double>(rows))));
    }
    nlists = std::clamp<std::size_t>(nlists, 1, rows);
    KmeansParams kp;
    kp.clusters = nlists;
    kp.iterations = params_.kmeans_iterations;
    kp.seed = params_.seed;
    kp.train_sample = params_.train_sample;
    kp.assign_fanout = params_.assign_fanout;
    const auto kmeans_start = Clock::now();
    KmeansResult km = spherical_kmeans(normalized_, kp, pool);
    build_stats_.kmeans_s = seconds_since(kmeans_start);
    centroids_ = std::move(km.centroids);
    assignment = std::move(km.assignment);
  }

  const auto encode_start = Clock::now();
  encode_lists(assignment, pool);
  build_stats_.encode_s = seconds_since(encode_start);
  build_stats_.total_s = seconds_since(build_start);

  auto& metrics = IvfMetrics::get();
  metrics.index_size.set(static_cast<double>(rows));
  metrics.nlists.set(static_cast<double>(centroids_.rows()));
  metrics.nprobe.set(
      static_cast<double>(std::min(params_.nprobe, centroids_.rows())));
  metrics.build_seconds.set(build_stats_.total_s);
  metrics.build_kmeans_seconds.set(build_stats_.kmeans_s);
  metrics.build_assign_seconds.set(build_stats_.assign_s);
  metrics.build_encode_seconds.set(build_stats_.encode_s);
}

void IvfKnnIndex::encode_lists(const std::vector<std::uint32_t>& assignment,
                               util::ThreadPool* pool) {
  const std::size_t rows = normalized_.rows();
  lists_.assign(centroids_.rows(), List{});
  // Pass 1 (serial): per-row slot within its list. Ascending row order
  // means ascending slot order, so every list's ids stay ascending — the
  // published deterministic scan order.
  std::vector<std::uint32_t> slot(rows);
  std::vector<std::uint32_t> sizes(lists_.size(), 0);
  for (std::size_t r = 0; r < rows; ++r) slot[r] = sizes[assignment[r]]++;
  for (std::size_t l = 0; l < lists_.size(); ++l) {
    lists_[l].ids.resize(sizes[l]);
    lists_[l].codes.resize(std::size_t{sizes[l]} * qstride_);
    lists_[l].scales.resize(sizes[l]);
  }
  // Pass 2 (pool-parallel): every row owns a disjoint pre-sized slot and
  // quantize_row is a pure per-row function, so any chunking — or none —
  // produces bit-identical lists.
  const float* base = normalized_.padded_data();
  const std::size_t stride = normalized_.stride();
  const std::size_t dim = normalized_.dim();
  auto chunk = [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      List& list = lists_[assignment[r]];
      const std::size_t s = slot[r];
      list.ids[s] = static_cast<TokenId>(r);
      list.scales[s] = quantize_row(base + r * stride, dim,
                                    list.codes.data() + s * qstride_,
                                    qstride_);
    }
  };
  if (pool != nullptr && rows >= 2 * kEncodeGrain) {
    pool->parallel_for_chunked(rows, kEncodeGrain, chunk);
  } else {
    chunk(0, rows);
  }
}

std::string IvfKnnIndex::contents_hash() const {
  crypto::Sha256 hasher;
  auto hash_bytes = [&](const void* data, std::size_t bytes) {
    hasher.update({static_cast<const std::uint8_t*>(data), bytes});
  };
  const std::size_t dim = centroids_.dim();
  for (std::size_t c = 0; c < centroids_.rows(); ++c) {
    hash_bytes(centroids_.row(c).data(), dim * sizeof(float));
  }
  for (const List& list : lists_) {
    std::uint64_t count = list.ids.size();
    hash_bytes(&count, sizeof(count));
    hash_bytes(list.ids.data(), list.ids.size() * sizeof(TokenId));
    hash_bytes(list.codes.data(), list.codes.size());
    hash_bytes(list.scales.data(), list.scales.size() * sizeof(float));
  }
  crypto::Digest d = hasher.finish();
  static const char* kHex = "0123456789abcdef";
  std::string hex;
  hex.reserve(d.size() * 2);
  for (std::uint8_t byte : d) {
    hex.push_back(kHex[byte >> 4]);
    hex.push_back(kHex[byte & 0xF]);
  }
  return hex;
}

void IvfKnnIndex::quantize_into_lists(
    const std::vector<std::uint32_t>& assignment, std::size_t first_row) {
  const float* base = normalized_.padded_data();
  const std::size_t stride = normalized_.stride();
  const std::size_t dim = normalized_.dim();
  for (std::size_t r = first_row; r < normalized_.rows(); ++r) {
    List& list = lists_[assignment[r - first_row]];
    list.ids.push_back(static_cast<TokenId>(r));
    std::size_t off = list.codes.size();
    list.codes.resize(off + qstride_);
    list.scales.push_back(
        quantize_row(base + r * stride, dim, list.codes.data() + off,
                     qstride_));
  }
}

void IvfKnnIndex::add_rows(const EmbeddingMatrix& more) {
  if (more.rows() == 0) return;
  if (more.dim() != normalized_.dim()) {
    throw std::invalid_argument("IvfKnnIndex::add_rows: dim mismatch");
  }
  if (centroids_.rows() == 0) {
    throw std::logic_error("IvfKnnIndex::add_rows: index built empty");
  }
  const std::size_t old_rows = normalized_.rows();
  const std::size_t stride = normalized_.stride();

  EmbeddingMatrix grown(old_rows + more.rows(), normalized_.dim());
  std::memcpy(grown.padded_data(), normalized_.padded_data(),
              old_rows * stride * sizeof(float));
  for (std::size_t r = 0; r < more.rows(); ++r) {
    auto src = more.row(r);
    auto dst = grown.row(old_rows + r);
    std::copy(src.begin(), src.end(), dst.begin());
    util::normalize(dst);
  }
  normalized_ = std::move(grown);

  // New rows keep ascending TokenIds, so per-list id order stays ascending
  // and the deterministic scan order is preserved.
  std::vector<std::uint32_t> assignment(more.rows());
  const float* base = normalized_.padded_data();
  for (std::size_t r = 0; r < more.rows(); ++r) {
    assignment[r] =
        nearest_centroid(centroids_, base + (old_rows + r) * stride);
  }
  quantize_into_lists(assignment, old_rows);

  IvfMetrics::get().index_size.set(static_cast<double>(normalized_.rows()));
}

std::vector<IvfKnnIndex::Neighbor> IvfKnnIndex::exact_scan(
    const float* unit_query, std::size_t n) const {
  const float* base = normalized_.padded_data();
  const std::size_t stride = normalized_.stride();
  const std::size_t rows = normalized_.rows();
  TopK heap(n);
  float scores[kScoreBlock];
  for (std::size_t b = 0; b < rows; b += kScoreBlock) {
    std::size_t cnt = std::min(kScoreBlock, rows - b);
    util::simd::dot_block(unit_query, base + b * stride, stride, cnt, scores);
    for (std::size_t j = 0; j < cnt; ++j) {
      heap.offer(static_cast<TokenId>(b + j), scores[j]);
    }
  }
  return heap.take_sorted();
}

std::vector<IvfKnnIndex::Neighbor> IvfKnnIndex::scan(const float* unit_query,
                                                     std::size_t n) const {
  auto& metrics = IvfMetrics::get();
  metrics.queries.inc();
  obs::ScopedTimer timer(static_cast<obs::Histogram*>(nullptr));

  // Stage 1 — coarse quantizer: rank all centroids, keep the nprobe best.
  const std::size_t nprobe = std::min(params_.nprobe, centroids_.rows());
  TopK probe_heap(nprobe);
  {
    const float* cbase = centroids_.padded_data();
    const std::size_t cstride = centroids_.stride();
    float scores[kScoreBlock];
    for (std::size_t b = 0; b < centroids_.rows(); b += kScoreBlock) {
      std::size_t cnt = std::min(kScoreBlock, centroids_.rows() - b);
      util::simd::dot_block(unit_query, cbase + b * cstride, cstride, cnt,
                            scores);
      for (std::size_t j = 0; j < cnt; ++j) {
        probe_heap.offer(static_cast<TokenId>(b + j), scores[j]);
      }
    }
  }
  std::vector<Neighbor> probes = probe_heap.take_sorted();

  // Stage 2 — int8 list scan: rank every row of the probed lists by the
  // dequantised integer dot product. The combined scale (query * row) maps
  // the exact int32 score into float once per row; equal approximate scores
  // fall back to the ascending-id tie-break inside TopK, so the candidate
  // pool is deterministic across tiers and thread counts.
  const std::size_t dim = normalized_.dim();
  std::vector<std::int8_t, util::simd::AlignedAllocator<std::int8_t>> qcodes(
      qstride_);
  const float qscale = quantize_row(unit_query, dim, qcodes.data(), qstride_);
  const std::size_t pool_k = std::max(n, params_.rerank * n);
  TopK candidates(pool_k);
  std::size_t pooled = 0;
  for (const Neighbor& probe : probes) {
    const List& list = lists_[probe.id];
    for (std::size_t i = 0; i < list.ids.size(); ++i) {
      std::int32_t idot = util::simd::dot_i8(
          qcodes.data(), list.codes.data() + i * qstride_, qstride_);
      candidates.offer(list.ids[i],
                       static_cast<float>(idot) * (qscale * list.scales[i]));
    }
    pooled += list.ids.size();
  }

  // Stage 3 — exact re-rank: rescore the surviving candidates against the
  // full-precision rows with the same kernel the exact index uses, so the
  // returned similarities (and their order) are exact.
  const float* base = normalized_.padded_data();
  const std::size_t stride = normalized_.stride();
  std::vector<Neighbor> pool_entries = candidates.take_sorted();
  TopK result(n);
  for (const Neighbor& c : pool_entries) {
    result.offer(c.id,
                 util::simd::dot(unit_query, base + c.id * stride, stride));
  }
  std::vector<Neighbor> out = result.take_sorted();

  metrics.probed_lists.set(static_cast<double>(probes.size()));
  metrics.candidate_pool.set(
      static_cast<double>(std::min(pool_entries.size(), pool_k)));
  {
    std::lock_guard<std::mutex> lock(metrics.latency_mutex);
    metrics.latency.observe(timer.elapsed_seconds());
  }

  // Continuous recall monitoring: one query in every recall_sample_every
  // also pays for the exact sweep and publishes the observed overlap.
  if (params_.recall_sample_every > 0) {
    std::uint64_t seq =
        query_seq_.fetch_add(1, std::memory_order_relaxed);
    if (seq % params_.recall_sample_every == 0) {
      std::vector<Neighbor> exact = exact_scan(unit_query, n);
      std::size_t hits = 0;
      // Both lists are small (<= n); membership via sorted-id probing.
      std::vector<TokenId> got;
      got.reserve(out.size());
      for (const Neighbor& nb : out) got.push_back(nb.id);
      std::sort(got.begin(), got.end());
      for (const Neighbor& nb : exact) {
        hits += std::binary_search(got.begin(), got.end(), nb.id) ? 1 : 0;
      }
      metrics.recall_samples.inc();
      if (!exact.empty()) {
        metrics.last_recall.set(static_cast<double>(hits) /
                                static_cast<double>(exact.size()));
      }
    }
  }
  return out;
}

std::vector<IvfKnnIndex::Neighbor> IvfKnnIndex::query(
    std::span<const float> query_vec, std::size_t n) const {
  if (n == 0 || normalized_.rows() == 0) return {};
  n = std::min(n, normalized_.rows());
  PaddedVector unit(normalized_.stride(), 0.0F);
  std::copy(query_vec.begin(), query_vec.end(), unit.begin());
  float norm = util::l2_norm({unit.data(), query_vec.size()});
  if (norm == 0.0F) return {};
  util::scale({unit.data(), query_vec.size()}, 1.0F / norm);
  return scan(unit.data(), n);
}

std::vector<std::vector<IvfKnnIndex::Neighbor>> IvfKnnIndex::query_batch(
    const std::vector<std::vector<float>>& queries, std::size_t n) const {
  // The probed fraction already makes each query cheap; a per-query loop
  // keeps batch results trivially bit-identical to single queries.
  std::vector<std::vector<Neighbor>> results(queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    results[qi] = query(queries[qi], n);
  }
  return results;
}

std::size_t IvfKnnIndex::memory_bytes() const {
  std::size_t bytes = normalized_.memory_bytes() + centroids_.memory_bytes() +
                      lists_.capacity() * sizeof(List);
  for (const List& list : lists_) {
    bytes += list.ids.capacity() * sizeof(TokenId) +
             list.codes.capacity() * sizeof(std::int8_t) +
             list.scales.capacity() * sizeof(float);
  }
  return bytes;
}

}  // namespace netobs::embedding
