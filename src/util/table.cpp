#include "util/table.hpp"

#include <algorithm>
#include <iomanip>

#include "util/string_util.hpp"

namespace netobs::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) {
    row.push_back(format("%.*f", precision, c));
  }
  add_row(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[i]))
         << row[i] << ' ';
    }
    os << "|\n";
  };
  print_row(headers_);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << "|" << std::string(widths[i] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace netobs::util
