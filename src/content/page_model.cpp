#include "content/page_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace netobs::content {

PageModel::PageModel(std::size_t topic_count, PageModelParams params)
    : topic_count_(topic_count),
      params_(params),
      vocab_size_(topic_count * params.words_per_topic + params.common_words),
      word_rank_(std::max<std::size_t>(
                     {params.words_per_topic, params.common_words, 1}),
                 params.word_zipf) {
  if (topic_count == 0) {
    throw std::invalid_argument("PageModel: topic_count must be > 0");
  }
  if (params.words_per_topic == 0 || params.common_words == 0) {
    throw std::invalid_argument("PageModel: empty vocabulary");
  }
}

Document PageModel::sample_page(const std::vector<float>& topic_mix,
                                util::Pcg32& rng) const {
  unsigned length = std::max(1U, rng.poisson(
                                     static_cast<double>(
                                         params_.tokens_per_page)));
  Document doc;
  doc.reserve(length);

  std::vector<double> weights(topic_mix.begin(), topic_mix.end());
  double topical_mass = 0.0;
  for (double w : weights) topical_mass += w;

  for (unsigned t = 0; t < length; ++t) {
    bool boilerplate =
        topical_mass <= 0.0 || rng.bernoulli(params_.common_weight);
    if (boilerplate) {
      TokenId word = static_cast<TokenId>(
          topic_count_ * params_.words_per_topic +
          word_rank_.sample(rng) % params_.common_words);
      doc.push_back(word);
    } else {
      std::size_t topic = rng.categorical(weights);
      TokenId word = static_cast<TokenId>(
          topic * params_.words_per_topic +
          word_rank_.sample(rng) % params_.words_per_topic);
      doc.push_back(word);
    }
  }
  return doc;
}

}  // namespace netobs::content
