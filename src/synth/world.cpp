#include "synth/world.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/string_util.hpp"

namespace netobs::synth {

namespace {

constexpr std::string_view kSyllables[] = {
    "ba", "be", "bo", "ca", "ce", "co", "da", "de", "do", "fa", "fi", "ga",
    "go", "ha", "ji", "ka", "ko", "la", "le", "li", "lo", "ma", "me", "mi",
    "mo", "na", "ne", "no", "pa", "pe", "pi", "po", "ra", "re", "ri", "ro",
    "sa", "se", "si", "so", "ta", "te", "ti", "to", "va", "ve", "vi", "za"};

const std::vector<std::string_view> kSiteTlds = {
    "com", "es", "net", "org", "com.ve", "com.co", "pe", "com.mx", "com.ar"};
const std::vector<std::string_view> kInfraTlds = {"net", "com", "io", "cloud"};

std::string random_base_name(util::Pcg32& rng, int min_syllables,
                             int max_syllables) {
  int n = min_syllables +
          static_cast<int>(rng.next_below(
              static_cast<std::uint32_t>(max_syllables - min_syllables + 1)));
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += kSyllables[rng.next_below(
        static_cast<std::uint32_t>(std::size(kSyllables)))];
  }
  return out;
}

}  // namespace

std::string HostnameUniverse::fresh_hostname(
    util::Pcg32& rng, const char* prefix,
    const std::vector<std::string_view>& tlds) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string name;
    if (prefix != nullptr && *prefix != '\0') {
      name = prefix;
      name += random_base_name(rng, 1, 2);
      name += util::format("-%u", rng.next_below(100));
      name += '.';
    }
    name += random_base_name(rng, 2, 3);
    name += '.';
    name += tlds[rng.next_below(static_cast<std::uint32_t>(tlds.size()))];
    if (index_.contains(name) || !util::is_valid_hostname(name)) continue;
    std::string sld = util::second_level_domain(name);
    if (used_slds_.contains(sld)) continue;
    used_slds_.insert(std::move(sld));
    return name;
  }
  throw std::runtime_error("HostnameUniverse: hostname space exhausted");
}

HostnameUniverse::HostnameUniverse(const ontology::CategorySpace& space,
                                   WorldParams params)
    : space_(&space), params_(params) {
  topic_count_ = space.top_level_ids().size();
  if (topic_count_ == 0) {
    throw std::invalid_argument("HostnameUniverse: ontology has no topics");
  }
  if (params_.first_party_hosts == 0) {
    throw std::invalid_argument("HostnameUniverse: need first-party hosts");
  }
  util::Pcg32 rng(params_.seed, 0x0b5e7);

  auto add_host = [this](HostInfo info) {
    index_.emplace(info.name, hosts_.size());
    hosts_.push_back(std::move(info));
    return hosts_.size() - 1;
  };

  // --- Universal core hosts: broad topic mixtures, extreme popularity.
  for (std::size_t i = 0; i < params_.universal_hosts; ++i) {
    HostInfo h;
    h.name = fresh_hostname(rng, "", kSiteTlds);
    h.kind = HostKind::kUniversal;
    h.crawlable = true;
    h.popularity = 1.0 / std::pow(static_cast<double>(i + 1), 0.8);
    // Broad mixture over 3-5 topics, biased to the first few ("Online
    // Communities", "Arts & Entertainment", ... in the Adwords naming).
    h.topic_mix.assign(topic_count_, 0.0F);
    int breadth = 3 + static_cast<int>(rng.next_below(3));
    double total = 0.0;
    for (int b = 0; b < breadth; ++b) {
      std::size_t topic =
          b < 2 ? static_cast<std::size_t>(rng.next_below(4))
                : rng.next_below(static_cast<std::uint32_t>(topic_count_));
      double w = rng.uniform(0.3, 1.0);
      h.topic_mix[topic] += static_cast<float>(w);
      total += w;
    }
    for (auto& m : h.topic_mix) m = static_cast<float>(m / total);
    universal_.push_back(add_host(std::move(h)));
  }

  // --- First-party topical sites.
  by_topic_.assign(topic_count_, {});
  for (std::size_t i = 0; i < params_.first_party_hosts; ++i) {
    HostInfo h;
    h.name = fresh_hostname(rng, "", kSiteTlds);
    h.kind = HostKind::kFirstParty;
    h.crawlable = rng.bernoulli(params_.first_party_crawlable);
    h.topic_mix.assign(topic_count_, 0.0F);
    auto dominant = rng.next_below(static_cast<std::uint32_t>(topic_count_));
    float dom_w = static_cast<float>(rng.uniform(0.65, 1.0));
    h.topic_mix[dominant] = dom_w;
    if (rng.bernoulli(0.4)) {
      auto secondary =
          rng.next_below(static_cast<std::uint32_t>(topic_count_));
      if (secondary != dominant) {
        h.topic_mix[secondary] = 1.0F - dom_w;
      } else {
        h.topic_mix[dominant] = 1.0F;
      }
    } else {
      h.topic_mix[dominant] = 1.0F;
    }
    std::size_t idx = add_host(std::move(h));
    by_topic_[dominant].push_back(idx);
  }
  // Within-topic popularity: Zipf by arrival order (already random), then
  // record the weight for labeling bias.
  for (auto& sites : by_topic_) {
    for (std::size_t rank = 0; rank < sites.size(); ++rank) {
      hosts_[sites[rank]].popularity =
          1.0 / std::pow(static_cast<double>(rank + 1),
                         params_.zipf_exponent);
    }
  }

  // --- Satellites (CDN/API endpoints with unrelated names).
  std::size_t site_count = hosts_.size();
  satellites_.assign(site_count, {});
  static const char* kSatPrefixes[] = {"api.", "cdn.", "img.", "static.",
                                       "edge."};
  for (std::size_t site = 0; site < site_count; ++site) {
    unsigned n = std::min(4U, rng.poisson(params_.satellites_per_site));
    for (unsigned s = 0; s < n; ++s) {
      HostInfo h;
      h.name = fresh_hostname(rng, kSatPrefixes[rng.next_below(5)],
                              kInfraTlds);
      h.kind = HostKind::kSatellite;
      h.owner = site;
      h.crawlable = false;  // fetching an API/CDN root returns nothing
      h.popularity = hosts_[site].popularity;
      satellites_[site].push_back(add_host(std::move(h)));
    }
  }

  // --- Shared CDNs.
  for (std::size_t i = 0; i < params_.shared_cdn_hosts; ++i) {
    HostInfo h;
    h.name = fresh_hostname(rng, "", kInfraTlds);
    h.kind = HostKind::kSharedCdn;
    h.crawlable = false;
    h.popularity = 1.0 / std::pow(static_cast<double>(i + 1), 0.7);
    shared_cdns_.push_back(add_host(std::move(h)));
  }

  // --- Trackers.
  static const char* kTrackerPrefixes[] = {"ads.", "track.", "pixel.",
                                           "metrics.", "beacon."};
  for (std::size_t i = 0; i < params_.tracker_hosts; ++i) {
    HostInfo h;
    h.name = fresh_hostname(rng, kTrackerPrefixes[rng.next_below(5)],
                            kInfraTlds);
    h.kind = HostKind::kTracker;
    h.crawlable = false;
    h.popularity = 1.0 / std::pow(static_cast<double>(i + 1), 0.7);
    trackers_.push_back(add_host(std::move(h)));
  }
}

std::size_t HostnameUniverse::index_of(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::out_of_range("HostnameUniverse: unknown host '" + name + "'");
  }
  return it->second;
}

const std::vector<std::size_t>& HostnameUniverse::sites_of_topic(
    std::size_t topic) const {
  return by_topic_.at(topic);
}

const std::vector<std::size_t>& HostnameUniverse::satellites_of(
    std::size_t site) const {
  static const std::vector<std::size_t> kEmpty;
  return site < satellites_.size() ? satellites_[site] : kEmpty;
}

ontology::HostLabeler HostnameUniverse::make_labeler() const {
  ontology::HostLabeler labeler(space_->size());
  util::Pcg32 rng(params_.seed, 0x1abe1);

  // Subcategory (level-1) flat ids per topic.
  std::vector<std::vector<std::size_t>> subcats(topic_count_);
  const auto& tops = space_->top_level_ids();
  for (std::size_t f = 0; f < space_->size(); ++f) {
    std::size_t top_flat = space_->top_level_of(f);
    auto topic_it = std::find(tops.begin(), tops.end(), top_flat);
    std::size_t topic = static_cast<std::size_t>(topic_it - tops.begin());
    if (f != top_flat) subcats[topic].push_back(f);
  }

  // Ontology coverage is biased to popular crawlable sites: sort candidates
  // by (crawlable, kind priority, popularity).
  std::vector<std::size_t> order(hosts_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto kind_rank = [](HostKind k) {
    switch (k) {
      case HostKind::kUniversal: return 0;
      case HostKind::kFirstParty: return 1;
      default: return 2;
    }
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const HostInfo& ha = hosts_[a];
    const HostInfo& hb = hosts_[b];
    if (ha.crawlable != hb.crawlable) return ha.crawlable;
    int ra = kind_rank(ha.kind);
    int rb = kind_rank(hb.kind);
    if (ra != rb) return ra < rb;
    if (ha.popularity != hb.popularity) return ha.popularity > hb.popularity;
    return ha.name < hb.name;
  });

  auto target = static_cast<std::size_t>(
      params_.label_coverage * static_cast<double>(hosts_.size()));
  for (std::size_t rank = 0; rank < target && rank < order.size(); ++rank) {
    const HostInfo& h = hosts_[order[rank]];
    if (h.topic_mix.empty()) continue;  // infrastructure: nothing to label
    ontology::CategoryVector label(space_->size(), 0.0F);
    for (std::size_t topic = 0; topic < topic_count_; ++topic) {
      float w = h.topic_mix[topic];
      if (w <= 0.01F) continue;
      // Root category gets importance proportional to the topic weight.
      label[tops[topic]] = std::min(1.0F, w * 1.1F);
      // One or two subcategories with attenuated importance.
      const auto& subs = subcats[topic];
      if (!subs.empty()) {
        int picks = 1 + static_cast<int>(rng.next_below(2));
        for (int p = 0; p < picks; ++p) {
          std::size_t sub =
              subs[rng.next_below(static_cast<std::uint32_t>(subs.size()))];
          label[sub] = std::min(
              1.0F, w * static_cast<float>(rng.uniform(0.4, 1.0)));
        }
      }
    }
    labeler.set_label(h.name, std::move(label));
  }
  return labeler;
}

std::string HostnameUniverse::tracker_hosts_file() const {
  std::vector<std::string> names;
  names.reserve(trackers_.size());
  for (std::size_t idx : trackers_) names.push_back(hosts_[idx].name);
  return filter::to_hosts_file(names);
}

double HostnameUniverse::uncrawlable_fraction() const {
  if (hosts_.empty()) return 0.0;
  std::size_t bad = 0;
  for (const auto& h : hosts_) {
    if (!h.crawlable) ++bad;
  }
  return static_cast<double>(bad) / static_cast<double>(hosts_.size());
}

}  // namespace netobs::synth
