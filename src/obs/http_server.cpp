#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/build_info.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/memory.hpp"
#include "obs/stats_stream.hpp"
#include "obs/trace.hpp"

namespace netobs::obs {

// ----------------------------------------------------------- HealthRegistry

void HealthRegistry::register_check(const std::string& name,
                                    std::function<HealthResult()> check) {
  std::lock_guard<std::mutex> lock(mutex_);
  checks_.emplace_back(name, std::move(check));
}

void HealthRegistry::set_status(const std::string& name, bool ok,
                                const std::string& detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  statuses_[name] = HealthResult{ok, detail};
}

std::vector<std::pair<std::string, HealthResult>> HealthRegistry::run() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, HealthResult>> results;
  results.reserve(checks_.size() + statuses_.size());
  for (const auto& [name, check] : checks_) {
    try {
      results.emplace_back(name, check());
    } catch (const std::exception& e) {
      results.emplace_back(name, HealthResult{false, e.what()});
    }
  }
  for (const auto& [name, result] : statuses_) {
    results.emplace_back(name, result);
  }
  return results;
}

bool HealthRegistry::healthy() const {
  for (const auto& [name, result] : run()) {
    (void)name;
    if (!result.ok) return false;
  }
  return true;
}

// --------------------------------------------------------------- HttpServer

namespace {

constexpr const char* kServeSite = "obs.http";

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

/// Known endpoint or "other" — bounds the path label cardinality.
const char* path_label(const std::string& path) {
  static const char* known[] = {"/",        "/metrics", "/metrics.json",
                                "/healthz", "/tracez",  "/statusz",
                                "/memz"};
  for (const char* p : known) {
    if (path == p) return p;
  }
  return "other";
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options, MetricsRegistry* registry)
    : options_(std::move(options)),
      registry_(registry != nullptr ? registry : &MetricsRegistry::global()) {}

HttpServer::~HttpServer() { stop(); }

std::uint16_t HttpServer::start() {
  if (running()) return port_;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("HttpServer: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    throw std::runtime_error("HttpServer: bad bind address '" +
                             options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error("HttpServer: bind(" + options_.bind_address +
                             ":" + std::to_string(options_.port) +
                             ") failed: " + std::strerror(err));
  }
  if (::listen(fd, options_.backlog) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error("HttpServer: listen() failed: " +
                             std::string(std::strerror(err)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  started_ = std::chrono::steady_clock::now();

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  log_info(kServeSite, "telemetry server listening",
           {{"address", options_.bind_address},
            {"port", std::to_string(port_)}});
  return port_;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  log_info(kServeSite, "telemetry server stopped",
           {{"requests", std::to_string(requests_served())}});
}

void HttpServer::add_collector(std::function<void()> collector) {
  std::lock_guard<std::mutex> lock(collectors_mutex_);
  collectors_.push_back(std::move(collector));
}

void HttpServer::add_status_provider(
    std::function<std::vector<std::pair<std::string, std::string>>()>
        provider) {
  std::lock_guard<std::mutex> lock(collectors_mutex_);
  status_providers_.push_back(std::move(provider));
}

void HttpServer::serve_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);  // 100 ms stop latency bound
    if (ready <= 0) continue;
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (running_.load(std::memory_order_acquire)) {
        log_warn(kServeSite, "accept failed",
                 {{"error", std::strerror(errno)}});
      }
      continue;
    }
    timeval tv{};
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    serve_connection(conn);
    ::close(conn);
  }
}

void HttpServer::serve_connection(int fd) {
  // Read the request head (we never accept bodies).
  std::string request;
  char buf[2048];
  bool too_large = false;
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (request.size() >= options_.max_request_bytes) {
      too_large = true;
      break;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // timeout / reset: drop silently
    request.append(buf, static_cast<std::size_t>(n));
  }

  Response response;
  if (too_large) {
    response = Response{431, "text/plain; charset=utf-8", "request too large\n"};
  } else {
    // "GET /path HTTP/1.1" — method and path only; headers are ignored.
    std::string method, target;
    std::istringstream head(request.substr(0, request.find("\r\n")));
    head >> method >> target;
    if (auto query = target.find('?'); query != std::string::npos) {
      target.resize(query);
    }
    response = handle(method, target);
  }

  std::string payload = "HTTP/1.1 " + std::to_string(response.status) + " " +
                        status_text(response.status) +
                        "\r\nContent-Type: " + response.content_type +
                        "\r\nContent-Length: " +
                        std::to_string(response.body.size()) +
                        "\r\nConnection: close\r\n\r\n" + response.body;
  send_all(fd, payload.data(), payload.size());
}

HttpServer::Response HttpServer::handle(const std::string& method,
                                        const std::string& path) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  registry_
      ->counter("netobs_telemetry_http_requests_total",
                "Requests served by the embedded telemetry endpoint",
                {{"path", path_label(path)}})
      .inc();
  if (method != "GET" && method != "HEAD") {
    return Response{405, "text/plain; charset=utf-8",
                    "only GET is supported\n"};
  }
  if (path == "/metrics") return metrics_text();
  if (path == "/metrics.json") return metrics_json();
  if (path == "/healthz") return healthz();
  if (path == "/tracez") return tracez();
  if (path == "/statusz") return statusz();
  if (path == "/memz") return memz();
  if (path == "/" || path.empty()) return index();
  return Response{404, "text/plain; charset=utf-8",
                  "unknown endpoint; see / for the index\n"};
}

void HttpServer::run_collectors() {
  StatsHub::global().publish();
  std::lock_guard<std::mutex> lock(collectors_mutex_);
  for (const auto& collector : collectors_) collector();
}

HttpServer::Response HttpServer::metrics_text() {
  run_collectors();
  std::ostringstream os;
  write_prometheus(os, *registry_);
  return Response{200, "text/plain; version=0.0.4; charset=utf-8", os.str()};
}

HttpServer::Response HttpServer::metrics_json() {
  run_collectors();
  std::ostringstream os;
  write_json(os, *registry_, JsonStyle::kPretty);
  return Response{200, "application/json; charset=utf-8", os.str()};
}

HttpServer::Response HttpServer::healthz() {
  auto results = health_.run();
  bool ok = true;
  for (const auto& [name, result] : results) {
    (void)name;
    ok = ok && result.ok;
  }
  std::ostringstream os;
  os << (ok ? "ok" : "unhealthy") << '\n';
  for (const auto& [name, result] : results) {
    os << name << ": " << (result.ok ? "ok" : "FAIL");
    if (!result.detail.empty()) os << " (" << result.detail << ")";
    os << '\n';
  }
  return Response{ok ? 200 : 503, "text/plain; charset=utf-8", os.str()};
}

HttpServer::Response HttpServer::tracez() {
  const TraceBuffer* buffer = registry_->trace_buffer();
  if (buffer == nullptr) {
    return Response{200, "text/plain; charset=utf-8",
                    "tracing disabled — call "
                    "MetricsRegistry::enable_tracing() (or pass --trace-out "
                    "to a bench/example)\n"};
  }
  std::ostringstream os;
  write_trace_tree(os, *buffer);
  return Response{200, "text/plain; charset=utf-8", os.str()};
}

HttpServer::Response HttpServer::statusz() {
  auto uptime = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - started_)
                    .count();
  auto snap = registry_->snapshot();
  std::ostringstream os;
  os << "netobs telemetry\n"
     << "uptime_seconds: " << static_cast<std::int64_t>(uptime) << '\n'
     << "pid: " << ::getpid() << '\n'
     << "registry_enabled: " << (registry_->enabled() ? "true" : "false")
     << '\n'
     << "counters: " << snap.counters.size() << '\n'
     << "gauges: " << snap.gauges.size() << '\n'
     << "histograms: " << snap.histograms.size() << '\n';
  if (const TraceBuffer* buffer = registry_->trace_buffer()) {
    os << "trace_spans: " << buffer->size() << " (dropped "
       << buffer->dropped() << ", capacity " << buffer->capacity() << ")\n";
  } else {
    os << "trace_spans: tracing disabled\n";
  }
  os << "requests_served: " << requests_served() << '\n';
  for (const auto& [key, value] : build_info_rows()) {
    os << key << ": " << value << '\n';
  }
  for (const auto& [key, value] : options_.status_info) {
    os << key << ": " << value << '\n';
  }
  {
    std::lock_guard<std::mutex> lock(collectors_mutex_);
    for (const auto& provider : status_providers_) {
      try {
        for (const auto& [key, value] : provider()) {
          os << key << ": " << value << '\n';
        }
      } catch (const std::exception& e) {
        os << "<error>: status provider failed: " << e.what() << '\n';
      }
    }
  }
  return Response{200, "text/plain; charset=utf-8", os.str()};
}

HttpServer::Response HttpServer::memz() {
  // Flush StatsHub publishers first so ledger mirrors synced through the
  // hub are as fresh as the pull probes evaluated inside to_json().
  run_collectors();
  return Response{200, "application/json; charset=utf-8",
                  MemoryAccountant::global().to_json()};
}

HttpServer::Response HttpServer::index() {
  return Response{200, "text/plain; charset=utf-8",
                  "netobs telemetry endpoints:\n"
                  "  /metrics       Prometheus text exposition\n"
                  "  /metrics.json  registry as JSON\n"
                  "  /healthz       readiness/liveness checks\n"
                  "  /tracez        span tree of the trace buffer\n"
                  "  /statusz       build/runtime status\n"
                  "  /memz          per-subsystem memory accounting\n"};
}

}  // namespace netobs::obs
