#include "net/bytes.hpp"

#include <cctype>

namespace netobs::net {

void ByteWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::put_u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_u24(std::uint32_t v) {
  if (v >= (1U << 24)) throw std::invalid_argument("put_u24: value too large");
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::put_bytes(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::size_t ByteWriter::begin_length(int width) {
  if (width < 1 || width > 3) {
    throw std::invalid_argument("begin_length: width must be 1..3");
  }
  pending_.push_back({buf_.size(), width});
  for (int i = 0; i < width; ++i) buf_.push_back(0);
  return pending_.size() - 1;
}

void ByteWriter::patch_length(std::size_t token) {
  if (token >= pending_.size()) {
    throw std::invalid_argument("patch_length: bad token");
  }
  const Pending& p = pending_[token];
  std::size_t body = buf_.size() - p.offset - static_cast<std::size_t>(p.width);
  std::size_t max = (1ULL << (8 * p.width)) - 1;
  if (body > max) throw std::length_error("patch_length: body too large");
  for (int i = 0; i < p.width; ++i) {
    buf_[p.offset + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
        body >> (8 * (p.width - 1 - i)));
  }
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw ParseError("truncated input: need " + std::to_string(n) +
                     " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::get_u24() {
  require(3);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                    data_[pos_ + 2];
  pos_ += 3;
  return v;
}

std::uint32_t ByteReader::get_u32() {
  require(4);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    data_[pos_ + 3];
  pos_ += 4;
  return v;
}

std::span<const std::uint8_t> ByteReader::get_bytes(std::size_t n) {
  require(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::get_string(std::size_t n) {
  auto bytes = get_bytes(n);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

ByteReader ByteReader::sub_reader(std::size_t n) {
  return ByteReader(get_bytes(n));
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

std::size_t varint_size(std::uint64_t value) {
  if (value < (1ULL << 6)) return 1;
  if (value < (1ULL << 14)) return 2;
  if (value < (1ULL << 30)) return 4;
  if (value < (1ULL << 62)) return 8;
  throw std::invalid_argument("varint_size: value exceeds 62 bits");
}

void put_varint(ByteWriter& w, std::uint64_t value) {
  switch (varint_size(value)) {
    case 1:
      w.put_u8(static_cast<std::uint8_t>(value));
      break;
    case 2:
      w.put_u16(static_cast<std::uint16_t>(value | 0x4000));
      break;
    case 4:
      w.put_u32(static_cast<std::uint32_t>(value | 0x80000000U));
      break;
    default:
      w.put_u32(static_cast<std::uint32_t>((value >> 32) | 0xC0000000U));
      w.put_u32(static_cast<std::uint32_t>(value));
      break;
  }
}

std::uint64_t get_varint(ByteReader& r) {
  std::uint8_t first = r.get_u8();
  int prefix = first >> 6;
  std::uint64_t value = first & 0x3F;
  int extra = (1 << prefix) - 1;
  for (int i = 0; i < extra; ++i) {
    value = (value << 8) | r.get_u8();
  }
  return value;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  std::vector<std::uint8_t> out;
  int hi = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    int nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = c - 'A' + 10;
    } else {
      throw std::invalid_argument("from_hex: bad character");
    }
    if (hi < 0) {
      hi = nibble;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | nibble));
      hi = -1;
    }
  }
  if (hi >= 0) throw std::invalid_argument("from_hex: odd number of digits");
  return out;
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

}  // namespace netobs::net
