// The --bench-baseline micro suite, shared between bench/micro_pipeline
// (which writes BENCH_micro.json) and bench/check_bench_regression (which
// re-runs the same measurements and compares against that file).
//
// Measures, on a synthetic 50K x 100 vocabulary (the paper's d=100 at a
// large-deployment vocabulary size), the kNN N=1000 sweep three ways:
//   1. the pre-SIMD algorithm — plain scalar dot per row, materialise every
//      similarity, partial_sort the whole vocabulary;
//   2. the blocked SIMD sweep + bounded top-k heap (CosineKnnIndex::query);
//   3. the batched sweep at batch 32 (CosineKnnIndex::query_batch).
// Plus the d=100 dot kernel, scalar tier vs best tier.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "embedding/knn.hpp"
#include "embedding/matrix.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/vec_math.hpp"

namespace netobs::bench {

struct MicroBaselineResult {
  std::size_t rows = 0;
  std::size_t dim = 0;
  std::size_t top_n = 0;
  std::size_t batch = 0;
  double fullsort_s = 0.0;
  double blocked_s = 0.0;
  double batch_per_query_s = 0.0;
  double dot_scalar_ns = 0.0;
  double dot_best_ns = 0.0;

  double knn_speedup() const { return fullsort_s / blocked_s; }
  double batch_speedup() const { return blocked_s / batch_per_query_s; }
  double dot_speedup() const { return dot_scalar_ns / dot_best_ns; }
};

namespace baseline_detail {

inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The seed implementation's inner product: one scalar accumulator chain.
/// (No -ffast-math in the build, so the compiler cannot vectorise the
/// reduction — this is genuinely the scalar baseline.)
inline float plain_dot(const float* a, const float* b, std::size_t n) {
  float acc = 0.0F;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// The seed algorithm: score all rows, partial_sort the full score vector.
inline std::vector<embedding::CosineKnnIndex::Neighbor> fullsort_scalar_query(
    const std::vector<float>& unit_rows, std::size_t rows, std::size_t dim,
    const std::vector<float>& unit_query, std::size_t n) {
  using Neighbor = embedding::CosineKnnIndex::Neighbor;
  std::vector<Neighbor> scored(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    scored[r].id = static_cast<embedding::TokenId>(r);
    scored[r].similarity =
        plain_dot(unit_rows.data() + r * dim, unit_query.data(), dim);
  }
  if (n > rows) n = rows;
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(n),
                    scored.end(), [](const Neighbor& a, const Neighbor& b) {
                      if (a.similarity != b.similarity)
                        return a.similarity > b.similarity;
                      return a.id < b.id;
                    });
  scored.resize(n);
  return scored;
}

}  // namespace baseline_detail

/// Runs the full measurement (tens of seconds). The three kNN paths are
/// timed round-robin and summarised by the median round, so CPU-frequency /
/// noisy-neighbour drift hits all of them equally instead of whichever
/// phase ran during the slow window.
inline MicroBaselineResult run_micro_baseline() {
  using baseline_detail::fullsort_scalar_query;
  using baseline_detail::seconds_since;

  MicroBaselineResult result;
  result.rows = 50000;
  result.dim = 100;
  result.top_n = 1000;
  result.batch = 32;
  const std::size_t kRows = result.rows;
  const std::size_t kDim = result.dim;
  const std::size_t kTopN = result.top_n;
  const std::size_t kBatch = result.batch;

  std::cerr << "[baseline] building " << kRows << " x " << kDim
            << " matrix...\n";
  embedding::EmbeddingMatrix matrix(kRows, kDim);
  util::Pcg32 rng(2021);
  matrix.init_uniform(rng);

  // Dense unnormalised copies for queries, pre-normalised dense rows for the
  // full-sort baseline (normalisation is build-time cost in both designs).
  std::vector<std::vector<float>> queries;
  for (std::size_t i = 0; i < kBatch; ++i) {
    auto row = matrix.row((i * 1543) % kRows);
    queries.emplace_back(row.begin(), row.end());
  }
  std::vector<float> unit_rows(kRows * kDim);
  for (std::size_t r = 0; r < kRows; ++r) {
    auto row = matrix.row(r);
    float norm = util::l2_norm(row);
    float inv = norm > 0.0F ? 1.0F / norm : 0.0F;
    for (std::size_t j = 0; j < kDim; ++j) {
      unit_rows[r * kDim + j] = row[j] * inv;
    }
  }

  embedding::CosineKnnIndex index(matrix);

  // Pre-normalised queries for the full-sort baseline (the index paths
  // normalise internally; doing it outside the timed region for the
  // baseline only biases the comparison *against* the new code).
  std::vector<std::vector<float>> unit_queries = queries;
  for (auto& q : unit_queries) {
    float norm = util::l2_norm(q);
    for (auto& v : q) v /= norm;
  }

  std::cerr << "[baseline] interleaved rounds ("
            << util::simd::tier_name(util::simd::active_tier()) << ")...\n";
  constexpr int kRounds = 9;
  constexpr int kBlockedPerRound = 4;
  std::vector<double> fullsort_times, blocked_times, batch_times;
  auto round_queries = [&](int round) {
    return static_cast<std::size_t>(round) % kBatch;
  };
  // Warm-up: touch every buffer once outside the timed rounds.
  benchmark::DoNotOptimize(
      fullsort_scalar_query(unit_rows, kRows, kDim, unit_queries[0], kTopN));
  benchmark::DoNotOptimize(index.query(queries[0], kTopN));
  benchmark::DoNotOptimize(index.query_batch(queries, kTopN));
  for (int round = 0; round < kRounds; ++round) {
    auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fullsort_scalar_query(
        unit_rows, kRows, kDim, unit_queries[round_queries(round)], kTopN));
    fullsort_times.push_back(seconds_since(t0));

    t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kBlockedPerRound; ++rep) {
      benchmark::DoNotOptimize(
          index.query(queries[round_queries(round + rep)], kTopN));
    }
    blocked_times.push_back(seconds_since(t0) / kBlockedPerRound);

    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(index.query_batch(queries, kTopN));
    batch_times.push_back(seconds_since(t0) / static_cast<double>(kBatch));
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  result.fullsort_s = median(fullsort_times);
  result.blocked_s = median(blocked_times);
  result.batch_per_query_s = median(batch_times);

  // d=100 dot kernel, scalar tier vs best tier.
  constexpr int kDotReps = 2000000;
  auto time_dot = [&](util::simd::Tier tier) {
    auto previous = util::simd::active_tier();
    util::simd::force_tier(tier);
    const float* a = unit_rows.data();
    const float* b = unit_rows.data() + kDim;
    auto start = std::chrono::steady_clock::now();
    float sink = 0.0F;
    for (int rep = 0; rep < kDotReps; ++rep) {
      sink += util::simd::dot(a, b, kDim);
    }
    benchmark::DoNotOptimize(sink);
    double ns = seconds_since(start) / kDotReps * 1e9;
    util::simd::force_tier(previous);
    return ns;
  };
  result.dot_scalar_ns = time_dot(util::simd::Tier::kScalar);
  result.dot_best_ns = time_dot(util::simd::best_supported_tier());
  return result;
}

/// Writes the BENCH_micro.json document. Returns false (with a message on
/// stderr) when the file cannot be written.
inline bool write_micro_baseline_json(const std::string& path,
                                      const MicroBaselineResult& r) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[baseline] cannot write " << path << "\n";
    return false;
  }
  out.setf(std::ios::fixed);
  out.precision(2);
  out << "{\n"
      << "  \"bench\": \"micro_pipeline --bench-baseline\",\n"
      << "  \"config\": {\"rows\": " << r.rows << ", \"dim\": " << r.dim
      << ", \"top_n\": " << r.top_n << ", \"batch\": " << r.batch << "},\n"
      << "  \"simd_tier\": \""
      << util::simd::tier_name(util::simd::active_tier()) << "\",\n"
      << "  \"knn_query\": {\n"
      << "    \"scalar_fullsort_ms\": " << r.fullsort_s * 1e3 << ",\n"
      << "    \"blocked_heap_ms\": " << r.blocked_s * 1e3 << ",\n"
      << "    \"batch32_per_query_ms\": " << r.batch_per_query_s * 1e3
      << ",\n"
      << "    \"scalar_fullsort_qps\": " << 1.0 / r.fullsort_s << ",\n"
      << "    \"blocked_heap_qps\": " << 1.0 / r.blocked_s << ",\n"
      << "    \"batch32_per_query_qps\": " << 1.0 / r.batch_per_query_s
      << ",\n"
      << "    \"speedup_vs_scalar_fullsort\": " << r.knn_speedup() << ",\n"
      << "    \"batch_speedup_vs_single_query\": " << r.batch_speedup()
      << "\n"
      << "  },\n"
      << "  \"dot_d100\": {\n"
      << "    \"scalar_ns\": " << r.dot_scalar_ns << ",\n"
      << "    \"" << util::simd::tier_name(util::simd::best_supported_tier())
      << "_ns\": " << r.dot_best_ns << ",\n"
      << "    \"speedup\": " << r.dot_speedup() << "\n"
      << "  },\n"
      << "  \"acceptance\": {\n"
      << "    \"knn_speedup_target\": 3.0,\n"
      << "    \"knn_speedup_met\": "
      << (r.knn_speedup() >= 3.0 ? "true" : "false") << ",\n"
      << "    \"batch_speedup_target\": 1.5,\n"
      << "    \"batch_speedup_met\": "
      << (r.batch_speedup() >= 1.5 ? "true" : "false") << "\n"
      << "  }\n"
      << "}\n";
  return static_cast<bool>(out);
}

}  // namespace netobs::bench
