// Layer 2-4 framing: Ethernet II / IPv4 / TCP|UDP header construction and
// parsing, with real IPv4 and TCP/UDP checksums.
//
// The observer substrate works on Packet objects (5-tuple + transport
// payload); this module converts them to and from raw Ethernet frames so
// traces can round-trip through standard pcap files (net/pcap.hpp) and the
// parsing path an on-path tap actually runs — from wire bytes up — is part
// of the tested surface.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace netobs::net {

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::size_t kEthernetHeaderSize = 14;
constexpr std::size_t kIpv4HeaderSize = 20;  ///< no options emitted
constexpr std::size_t kTcpHeaderSize = 20;   ///< no options emitted
constexpr std::size_t kUdpHeaderSize = 8;

/// RFC 1071 ones'-complement checksum over a byte range (pads odd length).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

struct FrameOptions {
  std::uint64_t dst_mac = 0x02FEEDFACE01;  ///< gateway-side MAC
  std::uint8_t ttl = 64;
  std::uint32_t tcp_seq = 1;  ///< sequence number for TCP segments
};

/// Serialises a Packet as an Ethernet II frame carrying IPv4 + TCP or UDP.
/// The packet's src_mac becomes the Ethernet source address. IPv4 and
/// TCP/UDP checksums are computed. Throws std::length_error when the
/// payload exceeds what a 16-bit IP total-length can carry.
std::vector<std::uint8_t> encapsulate(const Packet& packet,
                                      const FrameOptions& options = {});

/// Parses an Ethernet frame back into a Packet (timestamp/subscriber id are
/// not on the wire; the pcap layer restores the timestamp). Returns nullopt
/// for non-IPv4 frames, truncated input, or checksum failures.
std::optional<Packet> decapsulate(std::span<const std::uint8_t> frame);

}  // namespace netobs::net
