#include "profile/service.hpp"

#include <stdexcept>

namespace netobs::profile {

ProfilingService::ProfilingService(const ontology::HostLabeler& labeler,
                                   const filter::Blocklist* blocklist,
                                   ServiceParams params)
    : labeler_(&labeler), blocklist_(blocklist), params_(params) {}

void ProfilingService::ingest(const net::HostnameEvent& event) {
  if (blocklist_ != nullptr && blocklist_->is_blocked(event.hostname)) {
    ++filtered_;
    return;
  }
  store_.ingest(event);
}

void ProfilingService::ingest(const std::vector<net::HostnameEvent>& events) {
  for (const auto& e : events) ingest(e);
}

bool ProfilingService::retrain(std::int64_t train_day) {
  auto sequences = store_.day_sequences(train_day);
  if (sequences.empty()) return false;
  embedding::SgnsTrainer trainer(params_.sgns, params_.vocab);
  std::unique_ptr<embedding::HostEmbedding> fresh;
  try {
    fresh = std::make_unique<embedding::HostEmbedding>(
        params_.warm_start && model_ ? trainer.fit_warm(sequences, *model_)
                                     : trainer.fit(sequences));
  } catch (const std::invalid_argument&) {
    // Not enough data for the vocabulary thresholds: keep the old model,
    // exactly what a production back-end would do on a thin day.
    return false;
  }
  model_ = std::move(fresh);
  index_ = std::make_unique<embedding::CosineKnnIndex>(*model_);
  profiler_ = std::make_unique<SessionProfiler>(*model_, *index_, *labeler_,
                                                params_.profiler);
  return true;
}

const embedding::HostEmbedding& ProfilingService::model() const {
  if (!model_) throw std::logic_error("ProfilingService: no model trained");
  return *model_;
}

Session ProfilingService::session_of(std::uint32_t user,
                                     util::Timestamp now) const {
  return store_.session_of(user, now, params_.profile_window);
}

SessionProfile ProfilingService::profile_user(std::uint32_t user,
                                              util::Timestamp now) const {
  if (!profiler_) {
    throw std::logic_error("ProfilingService: profile before retrain()");
  }
  return profiler_->profile(session_of(user, now));
}

SessionProfile ProfilingService::profile_hostnames(
    const std::vector<std::string>& hostnames) const {
  if (!profiler_) {
    throw std::logic_error("ProfilingService: profile before retrain()");
  }
  return profiler_->profile(hostnames);
}

}  // namespace netobs::profile
