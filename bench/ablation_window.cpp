// Ablation — profiling window T (Section 5.4).
//
// Paper: "T = 20 minutes ... empirically tested as a good trade-off between
// very short sessions that may lead to non-meaningful profiles and very
// long ones that may include topics that are not relevant anymore".
//
// This bench sweeps T and reports profile quality (top-topic match against
// ground truth), the rate of empty/unusable profiles (short windows), and
// the ground-truth affinity of the ads the profile selects.
#include <iostream>

#include "bench/quality_probe.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {1000, 3, 2021, ""});
  bench::QualityFixture fx(cfg);
  util::print_banner(std::cout, "Ablation: profiling window T (Section 5.4)");
  bench::print_scale_note(cfg, fx.world);

  util::Table table({"T (minutes)", "profiles", "empty %", "top-3 match",
                     "ad affinity", "vs random"});
  for (std::int64_t minutes : {1, 5, 10, 20, 40, 80, 240}) {
    auto sp = bench::scaled_service_params();
    sp.profile_window = profile::Window::minutes(minutes);
    auto q = bench::measure_quality(fx, sp);
    table.add_row({std::to_string(minutes) + (minutes == 20 ? " (paper)" : ""),
                   std::to_string(q.profiles),
                   util::format("%.1f", q.empty_rate * 100),
                   util::format("%.3f", q.top3_match),
                   util::format("%.3f", q.selected_affinity),
                   util::format("%.2fx", q.selected_affinity /
                                             std::max(1e-9, q.random_affinity))});
  }
  table.print(std::cout);

  // Count-based windows, the alternative mode of Section 4.1 (T as a number
  // of hosts rather than a time interval).
  util::Table counts({"T (hosts)", "profiles", "top-3 match", "ad affinity"});
  for (std::size_t n : {3UL, 10UL, 30UL, 100UL}) {
    auto sp = bench::scaled_service_params();
    sp.profile_window = profile::Window::last_hosts(n);
    auto q = bench::measure_quality(fx, sp);
    counts.add_row({std::to_string(n), std::to_string(q.profiles),
                    util::format("%.3f", q.top3_match),
                    util::format("%.3f", q.selected_affinity)});
  }
  counts.print(std::cout);

  std::cout << "\nshape checks: very short windows yield fewer/poorer\n"
               "profiles, quality plateaus around the paper's T=20 min, and\n"
               "very long windows dilute the session's current interest.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
