#include "eval/purity.hpp"

#include <unordered_map>

namespace netobs::eval {

PurityResult neighbor_topic_purity(
    const embedding::HostEmbedding& embedding,
    const embedding::CosineKnnIndex& index,
    const std::function<std::optional<std::size_t>(const std::string&)>&
        topic_of,
    std::size_t k) {
  PurityResult result;
  result.neighbors = k;

  // Ground-truth topics per token (cached; skip hosts without one).
  std::vector<std::optional<std::size_t>> topic(embedding.size());
  std::unordered_map<std::size_t, std::size_t> topic_freq;
  std::size_t with_topic = 0;
  for (std::size_t i = 0; i < embedding.size(); ++i) {
    topic[i] = topic_of(embedding.token(static_cast<embedding::TokenId>(i)));
    if (topic[i]) {
      ++topic_freq[*topic[i]];
      ++with_topic;
    }
  }
  if (with_topic < 2) return result;

  double purity_sum = 0.0;
  for (std::size_t i = 0; i < embedding.size(); ++i) {
    if (!topic[i]) continue;
    // Over-fetch: infrastructure neighbours don't count toward k.
    auto neighbors =
        index.nearest_to(static_cast<embedding::TokenId>(i), k * 4 + 8);
    std::size_t considered = 0;
    std::size_t same = 0;
    for (const auto& nb : neighbors) {
      if (!topic[nb.id]) continue;
      ++considered;
      if (*topic[nb.id] == *topic[i]) ++same;
      if (considered == k) break;
    }
    if (considered == 0) continue;
    purity_sum += static_cast<double>(same) / static_cast<double>(considered);
    ++result.scored_hosts;
  }
  if (result.scored_hosts > 0) {
    result.mean_purity = purity_sum / static_cast<double>(result.scored_hosts);
  }

  // Random baseline: probability two topic-bearing hosts share a topic.
  double baseline = 0.0;
  for (const auto& [t, freq] : topic_freq) {
    double f = static_cast<double>(freq) / static_cast<double>(with_topic);
    baseline += f * f;
  }
  result.random_baseline = baseline;
  return result;
}

AttachmentResult satellite_attachment(
    const embedding::HostEmbedding& embedding,
    const embedding::CosineKnnIndex& index,
    const std::function<std::optional<std::string>(const std::string&)>&
        owner_of,
    const std::function<std::optional<std::size_t>(const std::string&)>&
        topic_of,
    std::size_t probe_neighbors) {
  AttachmentResult result;
  std::size_t owner_hits = 0;
  std::size_t topic_hits = 0;

  for (std::size_t i = 0; i < embedding.size(); ++i) {
    const std::string& host =
        embedding.token(static_cast<embedding::TokenId>(i));
    auto owner = owner_of(host);
    if (!owner) continue;
    auto owner_topic = topic_of(*owner);

    auto neighbors =
        index.nearest_to(static_cast<embedding::TokenId>(i), probe_neighbors);
    // First *site* neighbour (one with a ground-truth topic).
    for (const auto& nb : neighbors) {
      const std::string& nb_host = embedding.token(nb.id);
      auto nb_topic = topic_of(nb_host);
      if (!nb_topic) continue;
      ++result.scored_satellites;
      if (nb_host == *owner) {
        ++owner_hits;
        ++topic_hits;
      } else if (owner_topic && *nb_topic == *owner_topic) {
        ++topic_hits;
      }
      break;
    }
  }
  if (result.scored_satellites > 0) {
    auto n = static_cast<double>(result.scored_satellites);
    result.owner_top1 = static_cast<double>(owner_hits) / n;
    result.same_topic_top1 = static_cast<double>(topic_hits) / n;
  }
  return result;
}

}  // namespace netobs::eval
