// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of the library (synthetic world, SKIPGRAM
// initialisation, negative sampling, click outcomes, ...) draw from Pcg32 so a
// fixed seed reproduces a whole experiment bit-for-bit, independent of the
// standard library implementation.
#pragma once

#include <cstdint>
#include <vector>

namespace netobs::util {

/// SplitMix64: used to seed other generators and to hash 64-bit ids.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit mix (murmur3 finalizer); usable as a hash of
/// (seed, value) pairs. Inline: per-event hot paths (flight-recorder
/// sampling, intern hashing) cannot afford a cross-TU call.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// PCG-XSH-RR 32-bit generator (O'Neill 2014). Small state, good statistical
/// quality, cheap to fork into independent streams.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Constructs a generator from a seed and a stream id. Distinct stream ids
  /// yield statistically independent sequences for the same seed.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  std::uint32_t next_u32();
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (caches the second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Gamma(shape, 1) via Marsaglia-Tsang; valid for any shape > 0.
  double gamma(double shape);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Linear scan; use AliasSampler for repeated draws from a fixed
  /// distribution.
  std::size_t categorical(const std::vector<double>& weights);

  /// Dirichlet sample with concentration alpha for each of k symmetric
  /// components. Returns a probability vector of size k.
  std::vector<double> dirichlet(std::size_t k, double alpha);

  /// Dirichlet with per-component concentrations.
  std::vector<double> dirichlet(const std::vector<double>& alpha);

  /// true with probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// Poisson sample (Knuth's method for small means, PTRS not needed here).
  unsigned poisson(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(static_cast<std::uint32_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// UniformRandomBitGenerator interface for interop with <algorithm>.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffU; }
  result_type operator()() { return next_u32(); }

  /// Forks an independent generator; child streams are decorrelated from the
  /// parent and from each other.
  Pcg32 fork(std::uint64_t stream_tag);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Zipf(s) sampler over ranks {0, ..., n-1} using the inverse-CDF over the
/// precomputed normalisation; O(log n) per draw.
class ZipfSampler {
 public:
  /// n: universe size; s: exponent (s=1 is the classic web popularity curve).
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Pcg32& rng) const;

  /// Probability mass of rank r.
  double pmf(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative masses, cdf_.back() == 1.
};

}  // namespace netobs::util
