#include <gtest/gtest.h>

#include <sstream>

#include "net/frame.hpp"
#include "net/observer.hpp"
#include "net/pcap.hpp"
#include "net/tls.hpp"
#include "synth/browsing.hpp"
#include "synth/traffic.hpp"
#include "synth/users.hpp"
#include "synth/world.hpp"
#include "util/rng.hpp"

namespace netobs::net {
namespace {

Packet sample_packet(Transport proto = Transport::kTcp) {
  Packet p;
  p.timestamp = 1234;
  p.tuple = {0x0A000001, 0x5DB8D822, 44123,
             static_cast<std::uint16_t>(proto == Transport::kTcp ? 443 : 53),
             proto};
  p.src_mac = 0x02AABBCCDDEE;
  ClientHelloSpec spec;
  spec.sni = "example.com";
  p.payload = build_client_hello_record(spec);
  return p;
}

TEST(InternetChecksum, Rfc1071Example) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  auto data = from_hex("0001f203f4f5f6f7");
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthAndVerification) {
  auto data = from_hex("010203");
  std::uint16_t sum = internet_checksum(data);
  // Appending the checksum bytes makes the total verify to zero.
  std::vector<std::uint8_t> with_sum = {1, 2, 3,
                                        static_cast<std::uint8_t>(sum >> 8),
                                        static_cast<std::uint8_t>(sum)};
  // For odd-length data the checksum covers a zero pad; verify manually:
  std::vector<std::uint8_t> padded = {1, 2, 3, 0,
                                      static_cast<std::uint8_t>(sum >> 8),
                                      static_cast<std::uint8_t>(sum)};
  EXPECT_EQ(internet_checksum(padded), 0);
  (void)with_sum;
}

TEST(Frame, TcpRoundTrip) {
  Packet p = sample_packet(Transport::kTcp);
  auto frame = encapsulate(p);
  EXPECT_GE(frame.size(), 60U);
  auto back = decapsulate(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->tuple, p.tuple);
  EXPECT_EQ(back->src_mac, p.src_mac);
  EXPECT_EQ(back->payload, p.payload);
}

TEST(Frame, UdpRoundTrip) {
  Packet p = sample_packet(Transport::kUdp);
  auto frame = encapsulate(p);
  auto back = decapsulate(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->tuple, p.tuple);
  EXPECT_EQ(back->payload, p.payload);
}

TEST(Frame, TinyPayloadIsPaddedToMinimumFrame) {
  Packet p = sample_packet(Transport::kUdp);
  p.payload = {0x42};
  auto frame = encapsulate(p);
  EXPECT_EQ(frame.size(), 60U);
  auto back = decapsulate(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, (std::vector<std::uint8_t>{0x42}));
}

TEST(Frame, DetectsIpHeaderCorruption) {
  auto frame = encapsulate(sample_packet());
  frame[kEthernetHeaderSize + 8] ^= 0xFF;  // TTL
  EXPECT_FALSE(decapsulate(frame).has_value());
}

TEST(Frame, DetectsPayloadCorruption) {
  auto frame = encapsulate(sample_packet());
  frame[frame.size() - 5] ^= 0x01;  // inside TCP payload
  EXPECT_FALSE(decapsulate(frame).has_value());
}

TEST(Frame, RejectsNonIpv4) {
  auto frame = encapsulate(sample_packet());
  frame[12] = 0x86;  // EtherType -> IPv6
  frame[13] = 0xDD;
  EXPECT_FALSE(decapsulate(frame).has_value());
  EXPECT_FALSE(decapsulate(std::span<const std::uint8_t>(frame.data(), 10))
                   .has_value());
}

TEST(Frame, RejectsOversizedPayload) {
  Packet p = sample_packet();
  p.payload.assign(70000, 0);
  EXPECT_THROW(encapsulate(p), std::length_error);
}

TEST(Pcap, RoundTripPreservesPacketsAndTimestamps) {
  std::vector<Packet> packets;
  for (int i = 0; i < 20; ++i) {
    Packet p = sample_packet(i % 2 == 0 ? Transport::kTcp : Transport::kUdp);
    p.timestamp = 1000 + i;
    p.tuple.src_port = static_cast<std::uint16_t>(40000 + i);
    packets.push_back(std::move(p));
  }
  std::stringstream ss;
  write_pcap(ss, packets);
  auto loaded = read_pcap(ss);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].timestamp, packets[i].timestamp);
    EXPECT_EQ(loaded[i].tuple, packets[i].tuple);
    EXPECT_EQ(loaded[i].payload, packets[i].payload);
  }
}

TEST(Pcap, HeaderIsStandardLibpcap) {
  std::stringstream ss;
  write_pcap(ss, {sample_packet()});
  std::string data = ss.str();
  ASSERT_GE(data.size(), 24U);
  // Little-endian classic magic.
  EXPECT_EQ(static_cast<unsigned char>(data[0]), 0xd4);
  EXPECT_EQ(static_cast<unsigned char>(data[1]), 0xc3);
  EXPECT_EQ(static_cast<unsigned char>(data[2]), 0xb2);
  EXPECT_EQ(static_cast<unsigned char>(data[3]), 0xa1);
  EXPECT_EQ(static_cast<unsigned char>(data[20]), 1);  // LINKTYPE_ETHERNET
}

TEST(Pcap, RejectsGarbage) {
  std::stringstream bad("not a pcap file at all");
  EXPECT_THROW(read_pcap(bad), ParseError);

  // Truncated record after a valid header.
  std::stringstream ss;
  write_pcap(ss, {sample_packet()});
  std::string data = ss.str();
  std::stringstream cut(data.substr(0, data.size() - 4));
  EXPECT_THROW(read_pcap(cut), ParseError);
}

TEST(Pcap, EndToEndObserverFromCaptureFile) {
  // Full loop: synthetic browsing -> TLS/QUIC wire -> pcap file -> reload
  // -> SNI observer recovers the hostnames.
  ontology::CategoryTree tree = [&] {
    util::Pcg32 rng(11);
    ontology::AdwordsTreeParams tp;
    tp.top_level = 8;
    tp.second_level_target = 40;
    tp.total_categories = 120;
    return make_adwords_like_tree(rng, tp);
  }();
  ontology::CategorySpace space(tree);
  synth::WorldParams wp;
  wp.universal_hosts = 6;
  wp.first_party_hosts = 80;
  wp.shared_cdn_hosts = 4;
  wp.tracker_hosts = 8;
  synth::HostnameUniverse universe(space, wp);
  synth::PopulationParams pp;
  pp.num_users = 10;
  synth::UserPopulation population(universe.topic_count(), pp);

  synth::BrowsingSimulator sim(universe, population);
  auto trace = sim.simulate(0, 1);
  synth::TrafficParams tp;
  tp.quic_fraction = 0.3;
  tp.split_probability = 0.0;  // one frame per connection for this test
  synth::TrafficSynthesizer synth(population, tp);
  auto packets = synth.synthesize(trace.events);

  std::stringstream file;
  write_pcap(file, packets);
  auto replayed = read_pcap(file);
  ASSERT_EQ(replayed.size(), packets.size());

  SniObserver observer(Vantage::kWifiProvider);
  auto events = observer.observe_all(replayed);
  ASSERT_EQ(events.size(), trace.events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].hostname, trace.events[i].hostname);
  }
}

}  // namespace
}  // namespace netobs::net
