// Long-term profiling (Section 7.3): "profiling users could still be a
// lucrative business for network observers ... Profiles could be sold to
// third parties or direct ads could be sent via email or SMS."
//
// This example runs the session profiler over several simulated days,
// folds every session profile into a decayed per-user long-term profile
// (profile::UserProfileStore), persists the trained embedding model to
// disk and reloads it, and finally prints the durable interest dossier a
// network observer could monetise for a few users — next to their hidden
// ground-truth interests for comparison.
#include <fstream>
#include <iostream>
#include <algorithm>
#include <sstream>

#include "bench/common.hpp"
#include "obs/log.hpp"
#include "profile/service.hpp"
#include "profile/user_profile.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {800, 4, 5, ""});
  auto world = bench::make_world(cfg);
  std::cout << "== long-term user dossiers (Section 7.3) ==\n";

  auto labeler = world.universe->make_labeler();
  filter::Blocklist blocklist;
  blocklist.add_hosts_file("trackers", world.universe->tracker_hosts_file());

  profile::ServiceParams sp;
  sp.profiler.knn = 50;
  sp.profiler.aggregation = profile::Aggregation::kNormalizedMean;
  sp.vocab.min_count = 2;
  sp.vocab.subsample_threshold = 1e-4;
  sp.sgns.epochs = 15;
  profile::ProfilingService service(labeler, &blocklist, sp);

  synth::BrowsingSimulator sim(*world.universe, *world.population);
  auto trace = sim.simulate(0, cfg.days);
  service.ingest(trace.events);

  profile::UserProfileParams up;
  up.half_life = 3.0 * static_cast<double>(util::kDay);
  profile::UserProfileStore dossiers(world.space->size(), up);

  // Operational loop: retrain daily, profile every active user every 2h,
  // and fold the sessions into the long-term store.
  std::size_t sessions_folded = 0;
  for (std::int64_t day = 1; day < cfg.days; ++day) {
    if (!service.retrain(day - 1)) continue;
    std::size_t folded_before = sessions_folded;
    for (util::Timestamp t = day * util::kDay;
         t < (day + 1) * util::kDay; t += 30 * util::kMinute) {
      for (std::uint32_t u : service.store().users()) {
        auto p = service.profile_user(u, t);
        if (p.empty()) continue;
        dossiers.update(u, t, p);
        ++sessions_folded;
      }
    }
    obs::log_info("examples.longterm", "operational day done",
                  {{"day", std::to_string(day)},
                   {"sessions_folded",
                    std::to_string(sessions_folded - folded_before)},
                   {"users", std::to_string(dossiers.user_count())}});
  }
  std::cout << "folded " << sessions_folded
            << " session profiles into dossiers for "
            << dossiers.user_count() << " users\n";

  // Persist and reload the final model (what an observer would ship).
  {
    std::ofstream out("/tmp/netobs_model.bin", std::ios::binary);
    service.model().save(out);
  }
  std::ifstream in("/tmp/netobs_model.bin", std::ios::binary);
  auto reloaded = embedding::HostEmbedding::load(in);
  std::cout << "model persisted and reloaded from /tmp/netobs_model.bin ("
            << reloaded.size() << " hostnames)\n\n";

  // Show a few dossiers next to the hidden ground truth.
  const auto& space = *world.space;
  const auto& tops = space.top_level_ids();
  std::vector<std::pair<std::size_t, std::uint32_t>> by_sessions;
  for (std::uint32_t u = 0; u < world.population->size(); ++u) {
    by_sessions.push_back({dossiers.session_count(u), u});
  }
  std::sort(by_sessions.rbegin(), by_sessions.rend());
  for (int rank = 0; rank < 3; ++rank) {
    std::uint32_t u = by_sessions[static_cast<std::size_t>(rank)].second;
    auto dossier = dossiers.profile_at(u, cfg.days * util::kDay);

    // Aggregate to top-level topics for readability.
    std::vector<std::pair<double, std::size_t>> topic_mass(tops.size());
    for (std::size_t k = 0; k < tops.size(); ++k) topic_mass[k] = {0.0, k};
    for (std::size_t f = 0; f < dossier.size(); ++f) {
      std::size_t top_flat = space.top_level_of(f);
      for (std::size_t k = 0; k < tops.size(); ++k) {
        if (tops[k] == top_flat) topic_mass[k].first += dossier[f];
      }
    }
    std::sort(topic_mass.rbegin(), topic_mass.rend());

    const auto& user = world.population->user(u);
    std::vector<std::pair<float, std::size_t>> truth;
    for (std::size_t k = 0; k < user.interests.size(); ++k) {
      truth.push_back({user.interests[k], k});
    }
    std::sort(truth.rbegin(), truth.rend());

    std::cout << "user #" << u << " (" << dossiers.session_count(u)
              << " sessions observed)\n  inferred: ";
    for (int k = 0; k < 3; ++k) {
      std::cout << space.name(tops[topic_mass[static_cast<std::size_t>(k)]
                                       .second])
                << util::format(" (%.2f)  ",
                                topic_mass[static_cast<std::size_t>(k)].first);
    }
    std::cout << "\n  truth:    ";
    for (int k = 0; k < 3; ++k) {
      std::cout << space.name(tops[truth[static_cast<std::size_t>(k)].second])
                << util::format(" (%.2f)  ",
                                truth[static_cast<std::size_t>(k)].first);
    }
    std::cout << "\n";
  }
  std::cout << "\nThe dossier is durable: it survives model retraining and\n"
               "decays stale interests — the asset Section 7.3 warns about.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
