// Synthetic web-page text model.
//
// Section 4 considers (and rejects) the content-based labeling alternative:
// fetch a hostname's page and classify its text [Joulin et al.]. To measure
// that baseline instead of asserting it, the synthetic world needs page
// text: this model generates bag-of-words documents whose token
// distribution mixes topic-specific vocabularies (per the host's
// ground-truth topic mixture) with a topic-neutral common vocabulary —
// the standard generative assumption behind the Naive Bayes classifier
// that consumes them.
#pragma once

#include <cstdint>
#include <vector>

#include "util/alias_sampler.hpp"
#include "util/rng.hpp"

namespace netobs::content {

using TokenId = std::uint32_t;
/// A document as a token-id sequence (duplicates = term frequency).
using Document = std::vector<TokenId>;

struct PageModelParams {
  std::size_t words_per_topic = 150;  ///< topic-specific vocabulary size
  std::size_t common_words = 400;     ///< boilerplate shared by all pages
  double common_weight = 0.45;        ///< share of boilerplate per page
  double word_zipf = 1.05;            ///< within-vocabulary popularity
  std::size_t tokens_per_page = 120;  ///< document length (Poisson mean)
  std::uint64_t seed = 33;
};

class PageModel {
 public:
  PageModel(std::size_t topic_count, PageModelParams params = PageModelParams());

  /// Total vocabulary size (topics * words_per_topic + common_words).
  std::size_t vocab_size() const { return vocab_size_; }
  std::size_t topic_count() const { return topic_count_; }

  /// Samples a page for a host with the given ground-truth topic mixture
  /// (weights over topics; empty mixtures yield boilerplate-only pages).
  Document sample_page(const std::vector<float>& topic_mix,
                       util::Pcg32& rng) const;

  /// True if the token belongs to a topic vocabulary (vs boilerplate).
  bool is_topical(TokenId token) const {
    return token < topic_count_ * params_.words_per_topic;
  }

  /// Topic owning a topical token (undefined for boilerplate tokens).
  std::size_t topic_of_token(TokenId token) const {
    return token / params_.words_per_topic;
  }

 private:
  std::size_t topic_count_;
  PageModelParams params_;
  std::size_t vocab_size_;
  util::ZipfSampler word_rank_;  ///< shared within-vocabulary rank sampler
};

}  // namespace netobs::content
