#include "ontology/host_labeler.hpp"

#include <stdexcept>

namespace netobs::ontology {

HostLabeler::HostLabeler(std::size_t category_count)
    : category_count_(category_count) {
  if (category_count == 0) {
    throw std::invalid_argument("HostLabeler: category_count must be > 0");
  }
}

void HostLabeler::set_label(const std::string& host, CategoryVector label) {
  if (label.size() != category_count_) {
    throw std::invalid_argument("HostLabeler::set_label: dimension mismatch");
  }
  if (!is_valid_category_vector(label)) {
    throw std::invalid_argument(
        "HostLabeler::set_label: entries must be in [0,1]");
  }
  labels_[host] = std::move(label);
}

const CategoryVector* HostLabeler::label_of(const std::string& host) const {
  auto it = labels_.find(host);
  return it == labels_.end() ? nullptr : &it->second;
}

bool HostLabeler::is_labeled(const std::string& host) const {
  return labels_.contains(host);
}

double HostLabeler::coverage(std::size_t total_hosts) const {
  if (total_hosts == 0) return 0.0;
  return static_cast<double>(labels_.size()) /
         static_cast<double>(total_hosts);
}

std::vector<std::string> HostLabeler::labeled_hosts() const {
  std::vector<std::string> out;
  out.reserve(labels_.size());
  for (const auto& [host, _] : labels_) out.push_back(host);
  return out;
}

}  // namespace netobs::ontology
