#include "net/observer.hpp"

#include "net/dns.hpp"
#include "net/quic.hpp"
#include "net/tls.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_stream.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace netobs::net {

namespace {

/// Registry handles cached once; every observe() path increments through
/// these (relaxed atomics, no locks — see obs/metrics.hpp).
struct NetMetrics {
  obs::Counter& packets;
  obs::Counter& payload_bytes;
  obs::Counter& flows;
  obs::Counter& events;
  obs::Counter& sni_missing;
  obs::Counter& parse_failures;
  obs::Counter& flows_evicted;
  obs::Gauge& pending_flows;
  obs::RateGauge packet_rate;
  obs::RateGauge event_rate;

  static NetMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static NetMetrics m{
        reg.counter("netobs_net_packets_total", "Packets fed to observers"),
        reg.counter("netobs_net_payload_bytes_total",
                    "Transport payload bytes seen by observers"),
        reg.counter("netobs_net_flows_total",
                    "Flows (TCP connections / QUIC initials / DNS queries)"),
        reg.counter("netobs_net_events_total", "Hostname events extracted"),
        reg.counter("netobs_net_sni_missing_total",
                    "Complete ClientHellos without an SNI (ESNI/ECH)"),
        reg.counter("netobs_net_parse_failures_total",
                    "Flows/datagrams that failed TLS, QUIC or DNS parsing"),
        reg.counter("netobs_net_flows_evicted_total",
                    "Pending flows dropped by the flow-table cap"),
        reg.gauge("netobs_net_pending_flows",
                  "TCP flows buffered awaiting a complete ClientHello"),
        obs::RateGauge(reg, "netobs_net_packets_per_second",
                       "Packets observed per second (sliding window)"),
        obs::RateGauge(reg, "netobs_net_events_per_second",
                       "Hostname events extracted per second (sliding window)"),
    };
    return m;
  }
};

}  // namespace

std::string ipv4_to_string(std::uint32_t ip) {
  return util::format("%u.%u.%u.%u", (ip >> 24) & 0xFF, (ip >> 16) & 0xFF,
                      (ip >> 8) & 0xFF, ip & 0xFF);
}

std::string ip_pseudo_hostname(std::uint32_t dst_ip) {
  return util::format("ip-%08x.addr", dst_ip);
}

std::uint32_t UserDemux::user_of(const Packet& packet) {
  std::uint64_t key = 0;
  switch (vantage_) {
    case Vantage::kWifiProvider:
      key = packet.src_mac;
      break;
    case Vantage::kMobileOperator:
      key = packet.subscriber_id;
      break;
    case Vantage::kLandlineIsp:
      key = packet.tuple.src_ip;
      break;
  }
  // Tag the key domain so a MAC never collides with an IP if the vantage is
  // reconfigured between traces.
  key = util::mix64(key ^ (static_cast<std::uint64_t>(vantage_) << 56));
  auto [it, inserted] =
      ids_.emplace(key, static_cast<std::uint32_t>(ids_.size()));
  return it->second;
}

SniObserver::SniObserver(Vantage vantage, SniObserverOptions options)
    : options_(options), demux_(vantage) {}

std::optional<HostnameEvent> SniObserver::observe(const Packet& packet) {
  auto& metrics = NetMetrics::get();
  ++stats_.packets;
  metrics.packets.inc();
  metrics.packet_rate.record();
  metrics.payload_bytes.inc(packet.payload.size());
  if (packet.payload.empty()) return std::nullopt;
  // QUIC: the ClientHello arrives in a single UDP Initial datagram whose
  // keys an on-path observer can derive (Section 7.2; RFC 9001 §5.2).
  if (packet.tuple.proto == Transport::kUdp) {
    if (packet.tuple.dst_port != 443 ||
        !looks_like_quic_initial(packet.payload)) {
      return std::nullopt;
    }
    ++stats_.flows;
    metrics.flows.inc();
    auto view = decrypt_quic_initial(packet.payload);
    if (!view) {
      ++stats_.not_tls;
      metrics.parse_failures.inc();
      return std::nullopt;
    }
    HostnameEvent event;
    event.user_id = demux_.user_of(packet);
    event.timestamp = packet.timestamp;
    if (view->client_hello.sni) {
      event.hostname = *view->client_hello.sni;
    } else {
      ++stats_.no_sni;
      metrics.sni_missing.inc();
      if (!options_.ip_fallback) return std::nullopt;
      event.hostname = ip_pseudo_hostname(packet.tuple.dst_ip);
    }
    ++stats_.events;
    metrics.events.inc();
    metrics.event_rate.record();
    return event;
  }
  if (packet.tuple.proto != Transport::kTcp) return std::nullopt;
  if (done_.contains(packet.tuple)) return std::nullopt;

  auto it = flows_.find(packet.tuple);
  if (it == flows_.end()) {
    if (flows_.size() >= options_.max_pending_flows) {
      // Evict an arbitrary stale flow; a production observer would use LRU,
      // for the simulator any victim works and keeps memory bounded.
      flows_.erase(flows_.begin());
      ++stats_.evicted;
      metrics.flows_evicted.inc();
    }
    it = flows_.emplace(packet.tuple, FlowState{}).first;
    ++stats_.flows;
    metrics.flows.inc();
    metrics.pending_flows.set(static_cast<double>(flows_.size()));
  }
  FlowState& flow = it->second;
  flow.buffer.insert(flow.buffer.end(), packet.payload.begin(),
                     packet.payload.end());

  SniResult result = extract_sni(flow.buffer);
  switch (result.status) {
    case SniStatus::kNeedMoreData:
      if (flow.buffer.size() > options_.max_buffered_bytes) {
        flows_.erase(it);
        metrics.pending_flows.set(static_cast<double>(flows_.size()));
        done_.emplace(packet.tuple, false);
        ++stats_.not_tls;
        metrics.parse_failures.inc();
      } else {
        ++stats_.incomplete;
      }
      return std::nullopt;
    case SniStatus::kNotTls:
      flows_.erase(it);
      metrics.pending_flows.set(static_cast<double>(flows_.size()));
      done_.emplace(packet.tuple, false);
      ++stats_.not_tls;
      metrics.parse_failures.inc();
      return std::nullopt;
    case SniStatus::kNoSni: {
      flows_.erase(it);
      metrics.pending_flows.set(static_cast<double>(flows_.size()));
      done_.emplace(packet.tuple, false);
      ++stats_.no_sni;
      metrics.sni_missing.inc();
      if (!options_.ip_fallback) return std::nullopt;
      ++stats_.events;
      metrics.events.inc();
      metrics.event_rate.record();
      HostnameEvent ip_event;
      ip_event.user_id = demux_.user_of(packet);
      ip_event.timestamp = packet.timestamp;
      ip_event.hostname = ip_pseudo_hostname(packet.tuple.dst_ip);
      return ip_event;
    }
    case SniStatus::kFound:
      break;
  }

  flows_.erase(it);
  metrics.pending_flows.set(static_cast<double>(flows_.size()));
  done_.emplace(packet.tuple, true);
  ++stats_.events;
  metrics.events.inc();
  metrics.event_rate.record();
  HostnameEvent event;
  event.user_id = demux_.user_of(packet);
  event.timestamp = packet.timestamp;
  event.hostname = std::move(result.sni);
  return event;
}

std::vector<HostnameEvent> SniObserver::observe_all(
    const std::vector<Packet>& packets) {
  std::vector<HostnameEvent> events;
  for (const auto& p : packets) {
    if (auto e = observe(p)) events.push_back(std::move(*e));
  }
  return events;
}

DnsObserver::DnsObserver(Vantage vantage) : demux_(vantage) {}

std::vector<HostnameEvent> DnsObserver::observe(const Packet& packet) {
  auto& metrics = NetMetrics::get();
  ++stats_.packets;
  metrics.packets.inc();
  metrics.packet_rate.record();
  metrics.payload_bytes.inc(packet.payload.size());
  std::vector<HostnameEvent> events;
  if (packet.tuple.proto != Transport::kUdp || packet.tuple.dst_port != 53) {
    return events;
  }
  ++stats_.flows;
  metrics.flows.inc();
  DnsMessage msg;
  try {
    msg = parse_dns_message(packet.payload);
  } catch (const ParseError&) {
    ++stats_.not_tls;  // counted as unparseable
    metrics.parse_failures.inc();
    return events;
  }
  if (msg.is_response) return events;
  std::uint32_t user = demux_.user_of(packet);
  for (const auto& q : msg.questions) {
    HostnameEvent e;
    e.user_id = user;
    e.timestamp = packet.timestamp;
    e.hostname = q.qname;
    events.push_back(std::move(e));
    ++stats_.events;
    metrics.events.inc();
    metrics.event_rate.record();
  }
  return events;
}

}  // namespace netobs::net
