#include "tsne/tsne.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace netobs::tsne {

namespace {

/// Pairwise squared Euclidean distances (n x n, row-major).
std::vector<double> pairwise_sq_distances(const std::vector<float>& rows,
                                          std::size_t n, std::size_t dim) {
  std::vector<double> d2(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < dim; ++k) {
        double diff = static_cast<double>(rows[i * dim + k]) -
                      static_cast<double>(rows[j * dim + k]);
        s += diff * diff;
      }
      d2[i * n + j] = s;
      d2[j * n + i] = s;
    }
  }
  return d2;
}

/// Conditional probabilities p_{j|i} for one row given beta = 1/(2 sigma^2);
/// returns the Shannon entropy H in nats.
double row_probabilities(const std::vector<double>& d2, std::size_t n,
                         std::size_t i, double beta, std::vector<double>& p) {
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    p[j] = j == i ? 0.0 : std::exp(-beta * d2[i * n + j]);
    sum += p[j];
  }
  if (sum <= 0.0) sum = 1e-12;
  double entropy = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    p[j] /= sum;
    if (p[j] > 1e-12) entropy -= p[j] * std::log(p[j]);
  }
  return entropy;
}

/// Symmetrised, perplexity-calibrated affinity matrix P.
std::vector<double> compute_p(const std::vector<double>& d2, std::size_t n,
                              double perplexity) {
  const double target_entropy = std::log(perplexity);
  std::vector<double> p(n * n, 0.0);
  std::vector<double> row(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    double beta = 1.0;
    double beta_min = 0.0;
    double beta_max = std::numeric_limits<double>::infinity();
    double entropy = row_probabilities(d2, n, i, beta, row);
    for (int iter = 0; iter < 64 && std::fabs(entropy - target_entropy) > 1e-5;
         ++iter) {
      if (entropy > target_entropy) {
        beta_min = beta;
        beta = std::isinf(beta_max) ? beta * 2.0 : (beta + beta_max) / 2.0;
      } else {
        beta_max = beta;
        beta = (beta + beta_min) / 2.0;
      }
      entropy = row_probabilities(d2, n, i, beta, row);
    }
    for (std::size_t j = 0; j < n; ++j) p[i * n + j] = row[j];
  }

  // Symmetrise and normalise to a joint distribution.
  std::vector<double> joint(n * n, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      joint[i * n + j] = (p[i * n + j] + p[j * n + i]) / 2.0;
      total += joint[i * n + j];
    }
  }
  for (double& v : joint) v = std::max(v / total, 1e-12);
  return joint;
}

}  // namespace

TsneResult run_tsne(const std::vector<float>& rows, std::size_t n,
                    std::size_t dim, TsneParams params) {
  if (n == 0 || dim == 0 || rows.size() != n * dim) {
    throw std::invalid_argument("run_tsne: bad input shape");
  }
  if (params.perplexity <= 1.0) {
    throw std::invalid_argument("run_tsne: perplexity must be > 1");
  }
  if (static_cast<double>(n) < 3.0 * params.perplexity) {
    throw std::invalid_argument(
        "run_tsne: need at least 3 * perplexity points");
  }
  const std::size_t od = params.output_dims;
  if (od == 0) throw std::invalid_argument("run_tsne: output_dims == 0");

  auto d2 = pairwise_sq_distances(rows, n, dim);
  auto p = compute_p(d2, n, params.perplexity);

  util::Pcg32 rng(params.seed, 0x75e);
  std::vector<double> y(n * od);
  for (double& v : y) v = rng.normal(0.0, 1e-4);
  std::vector<double> dy(n * od, 0.0);
  std::vector<double> velocity(n * od, 0.0);
  std::vector<double> gains(n * od, 1.0);
  std::vector<double> q(n * n, 0.0);

  TsneResult result;
  result.points = n;
  result.dims = od;
  result.kl_history.reserve(static_cast<std::size_t>(params.iterations));

  for (int iter = 0; iter < params.iterations; ++iter) {
    double exaggeration =
        iter < params.exaggeration_iters ? params.early_exaggeration : 1.0;
    double momentum = iter < params.momentum_switch_iter
                          ? params.initial_momentum
                          : params.final_momentum;

    // Student-t affinities in the embedding.
    double q_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double s = 0.0;
        for (std::size_t k = 0; k < od; ++k) {
          double diff = y[i * od + k] - y[j * od + k];
          s += diff * diff;
        }
        double num = 1.0 / (1.0 + s);
        q[i * n + j] = num;
        q[j * n + i] = num;
        q_total += 2.0 * num;
      }
      q[i * n + i] = 0.0;
    }
    if (q_total <= 0.0) q_total = 1e-12;

    // Gradient: 4 * sum_j (p_ij*ex - q_ij) * num_ij * (y_i - y_j).
    std::fill(dy.begin(), dy.end(), 0.0);
    double kl = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        double num = q[i * n + j];
        double qij = std::max(num / q_total, 1e-12);
        double pij = p[i * n + j];
        double mult = (pij * exaggeration - qij) * num;
        for (std::size_t k = 0; k < od; ++k) {
          dy[i * od + k] += 4.0 * mult * (y[i * od + k] - y[j * od + k]);
        }
        if (j > i) kl += 2.0 * pij * std::log(pij / qij);
      }
    }
    result.kl_history.push_back(kl);

    // Adaptive gains + momentum update (reference implementation rules).
    for (std::size_t idx = 0; idx < n * od; ++idx) {
      bool same_sign = (dy[idx] > 0.0) == (velocity[idx] > 0.0);
      gains[idx] = same_sign ? std::max(0.01, gains[idx] * 0.8)
                             : gains[idx] + 0.2;
      velocity[idx] = momentum * velocity[idx] -
                      params.learning_rate * gains[idx] * dy[idx];
      y[idx] += velocity[idx];
    }
    // Re-centre.
    for (std::size_t k = 0; k < od; ++k) {
      double mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) mean += y[i * od + k];
      mean /= static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) y[i * od + k] -= mean;
    }
  }

  result.embedding = std::move(y);
  return result;
}

TsneResult run_tsne(const embedding::EmbeddingMatrix& data,
                    TsneParams params) {
  std::vector<float> rows = data.packed_copy();
  return run_tsne(rows, data.rows(), data.dim(), params);
}

}  // namespace netobs::tsne
