#include <gtest/gtest.h>

#include "net/observer.hpp"
#include "net/quic.hpp"
#include "synth/traffic.hpp"
#include "synth/users.hpp"
#include "util/rng.hpp"

namespace netobs::net {
namespace {

QuicInitialSpec spec_for(const std::string& host,
                         std::uint32_t packet_number = 1234) {
  QuicInitialSpec spec;
  spec.dcid = {0x83, 0x94, 0xc8, 0xf0, 0x3e, 0x51, 0x57, 0x08};
  spec.scid = {0x01, 0x02, 0x03, 0x04};
  spec.packet_number = packet_number;
  spec.client_hello.sni = host;
  return spec;
}

TEST(QuicInitial, BuildProducesProtectedDatagram) {
  auto packet = build_quic_initial(spec_for("booking.com"));
  // Client Initials must be padded to >= 1200 bytes.
  EXPECT_GE(packet.size(), kQuicMinInitialSize);
  EXPECT_TRUE(looks_like_quic_initial(packet));
  // The SNI must not appear in cleartext anywhere in the datagram.
  std::string needle = "booking.com";
  auto it = std::search(packet.begin(), packet.end(), needle.begin(),
                        needle.end());
  EXPECT_EQ(it, packet.end()) << "SNI leaked in cleartext";
}

TEST(QuicInitial, ObserverDecryptsFromDcidAlone) {
  auto packet = build_quic_initial(spec_for("api.bkng.azure.com", 77));
  auto view = decrypt_quic_initial(packet);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->version, kQuicVersion1);
  EXPECT_EQ(view->packet_number, 77U);
  EXPECT_EQ(view->dcid,
            (std::vector<std::uint8_t>{0x83, 0x94, 0xc8, 0xf0, 0x3e, 0x51,
                                       0x57, 0x08}));
  ASSERT_TRUE(view->client_hello.sni.has_value());
  EXPECT_EQ(*view->client_hello.sni, "api.bkng.azure.com");
}

TEST(QuicInitial, RoundTripAcrossPacketNumbers) {
  for (std::uint32_t pn : {0U, 1U, 255U, 65536U, 1048575U}) {
    auto packet = build_quic_initial(spec_for("espn.com", pn));
    auto view = decrypt_quic_initial(packet);
    ASSERT_TRUE(view.has_value()) << "pn=" << pn;
    EXPECT_EQ(view->packet_number, pn);
  }
}

TEST(QuicInitial, TamperedCiphertextFailsAuthentication) {
  auto packet = build_quic_initial(spec_for("hotels.com"));
  auto tampered = packet;
  tampered[tampered.size() / 2] ^= 0x01;
  EXPECT_FALSE(decrypt_quic_initial(tampered).has_value());
}

TEST(QuicInitial, CorruptedDcidDerivesWrongKeys) {
  auto packet = build_quic_initial(spec_for("hotels.com"));
  auto wrong = packet;
  wrong[6] ^= 0xFF;  // first DCID byte
  EXPECT_FALSE(decrypt_quic_initial(wrong).has_value());
}

TEST(QuicInitial, RejectsNonQuicPayloads) {
  std::vector<std::uint8_t> junk(1300, 0x41);
  EXPECT_FALSE(decrypt_quic_initial(junk).has_value());
  EXPECT_FALSE(looks_like_quic_initial(junk));
  std::vector<std::uint8_t> short_pkt = {0xC0, 0x00, 0x00, 0x00};
  EXPECT_FALSE(decrypt_quic_initial(short_pkt).has_value());
  // Wrong version.
  auto packet = build_quic_initial(spec_for("a.com"));
  packet[4] = 0x02;
  EXPECT_FALSE(looks_like_quic_initial(packet));
}

TEST(QuicInitial, RejectsBadSpecs) {
  QuicInitialSpec spec = spec_for("a.com");
  spec.dcid.clear();
  EXPECT_THROW(build_quic_initial(spec), std::invalid_argument);
  spec = spec_for("a.com");
  spec.dcid.assign(21, 0);
  EXPECT_THROW(build_quic_initial(spec), std::invalid_argument);
}

TEST(QuicInitial, SniObserverHandlesQuicDatagrams) {
  SniObserver observer(Vantage::kWifiProvider);
  Packet p;
  p.timestamp = 42;
  p.tuple = {0x0A000001, 0x01010101, 50000, 443, Transport::kUdp};
  p.src_mac = 7;
  p.payload = build_quic_initial(spec_for("twitter.com"));
  auto event = observer.observe(p);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->hostname, "twitter.com");
  EXPECT_EQ(event->timestamp, 42);
  EXPECT_EQ(observer.stats().events, 1U);
}

TEST(QuicInitial, SniObserverIgnoresOtherUdp) {
  SniObserver observer(Vantage::kWifiProvider);
  Packet p;
  p.tuple = {0x0A000001, 0x01010101, 50000, 443, Transport::kUdp};
  p.payload = {0x01, 0x02, 0x03};  // not QUIC
  EXPECT_FALSE(observer.observe(p).has_value());
  p.tuple.dst_port = 8443;
  p.payload = build_quic_initial(spec_for("a.com"));
  EXPECT_FALSE(observer.observe(p).has_value());
}

TEST(QuicInitial, MixedTlsQuicTrafficRecoversEverything) {
  synth::PopulationParams pp;
  pp.num_users = 10;
  synth::UserPopulation population(5, pp);

  std::vector<HostnameEvent> events;
  util::Pcg32 rng(3);
  for (std::uint32_t i = 0; i < 60; ++i) {
    events.push_back({i % 10, static_cast<util::Timestamp>(i),
                      "host" + std::to_string(rng.next_below(20)) + ".com"});
  }
  synth::TrafficParams tp;
  tp.quic_fraction = 0.5;
  tp.split_probability = 0.3;
  synth::TrafficSynthesizer synth(population, tp);
  auto packets = synth.synthesize(events);

  std::size_t udp = 0;
  for (const auto& p : packets) {
    if (p.tuple.proto == Transport::kUdp) ++udp;
  }
  EXPECT_GT(udp, 10U);
  EXPECT_LT(udp, 50U);

  SniObserver observer(Vantage::kWifiProvider);
  auto recovered = observer.observe_all(packets);
  ASSERT_EQ(recovered.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(recovered[i].hostname, events[i].hostname);
  }
}

// Varint property sweep (RFC 9000 §16 boundaries).
class VarintSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintSweep, RoundTrips) {
  std::uint64_t value = GetParam();
  ByteWriter w;
  put_varint(w, value);
  EXPECT_EQ(w.size(), varint_size(value));
  ByteReader r(w.data());
  EXPECT_EQ(get_varint(r), value);
  EXPECT_TRUE(r.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintSweep,
    ::testing::Values(0ULL, 63ULL, 64ULL, 16383ULL, 16384ULL, 1073741823ULL,
                      1073741824ULL, (1ULL << 62) - 1));

TEST(Varint, RejectsOversizedValues) {
  ByteWriter w;
  EXPECT_THROW(put_varint(w, 1ULL << 62), std::invalid_argument);
  EXPECT_THROW(varint_size(1ULL << 62), std::invalid_argument);
}

}  // namespace
}  // namespace netobs::net
