#include "embedding/knn.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/vec_math.hpp"

namespace netobs::embedding {

namespace {

struct KnnMetrics {
  obs::Counter& queries;
  obs::Histogram& query_seconds;
  obs::Gauge& index_size;

  static KnnMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static KnnMetrics m{
        reg.counter("netobs_embedding_knn_queries_total",
                    "Cosine kNN queries answered"),
        reg.histogram("netobs_embedding_knn_query_seconds",
                      "Latency of one kNN scan",
                      obs::default_latency_buckets()),
        reg.gauge("netobs_embedding_knn_index_size",
                  "Rows in the most recently built kNN index"),
    };
    return m;
  }
};

EmbeddingMatrix normalized_copy(const EmbeddingMatrix& matrix) {
  EmbeddingMatrix out = matrix;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    util::normalize(out.row(i));
  }
  return out;
}

}  // namespace

CosineKnnIndex::CosineKnnIndex(const HostEmbedding& embedding)
    : normalized_(normalized_copy(embedding.central())) {
  KnnMetrics::get().index_size.set(static_cast<double>(normalized_.rows()));
}

CosineKnnIndex::CosineKnnIndex(const EmbeddingMatrix& matrix)
    : normalized_(normalized_copy(matrix)) {
  KnnMetrics::get().index_size.set(static_cast<double>(normalized_.rows()));
}

std::vector<CosineKnnIndex::Neighbor> CosineKnnIndex::scan(
    std::span<const float> unit_query, std::size_t n,
    std::ptrdiff_t exclude) const {
  auto& metrics = KnnMetrics::get();
  metrics.queries.inc();
  obs::ScopedTimer timer(&metrics.query_seconds);
  std::vector<Neighbor> scored;
  scored.reserve(normalized_.rows());
  for (std::size_t i = 0; i < normalized_.rows(); ++i) {
    if (static_cast<std::ptrdiff_t>(i) == exclude) continue;
    scored.push_back(
        {static_cast<TokenId>(i), util::dot(unit_query, normalized_.row(i))});
  }
  n = std::min(n, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(n),
                    scored.end(), [](const Neighbor& a, const Neighbor& b) {
                      if (a.similarity != b.similarity) {
                        return a.similarity > b.similarity;
                      }
                      return a.id < b.id;  // deterministic ties
                    });
  scored.resize(n);
  return scored;
}

std::vector<CosineKnnIndex::Neighbor> CosineKnnIndex::query(
    std::span<const float> query_vec, std::size_t n) const {
  std::vector<float> unit(query_vec.begin(), query_vec.end());
  float norm = util::l2_norm(unit);
  if (norm == 0.0F || n == 0) return {};
  util::scale(unit, 1.0F / norm);
  return scan(unit, n, -1);
}

std::vector<CosineKnnIndex::Neighbor> CosineKnnIndex::nearest_to(
    TokenId id, std::size_t n) const {
  return scan(normalized_.row(id), n, static_cast<std::ptrdiff_t>(id));
}

}  // namespace netobs::embedding
