// Exact t-SNE (van der Maaten & Hinton 2008) for embedding visualisation.
//
// Section 6.2 projects one day's second-level-domain embeddings (~3K points,
// 100 dims) to 2D with t-SNE to show topical clusters (Figures 4-5). At that
// scale the exact O(n^2) algorithm is fine; the implementation follows the
// reference: perplexity-calibrated Gaussian affinities, early exaggeration,
// momentum gradient descent with adaptive per-coordinate gains.
#pragma once

#include <cstddef>
#include <vector>

#include "embedding/matrix.hpp"
#include "util/rng.hpp"

namespace netobs::tsne {

struct TsneParams {
  std::size_t output_dims = 2;
  double perplexity = 30.0;
  int iterations = 500;
  double learning_rate = 200.0;
  double early_exaggeration = 12.0;
  int exaggeration_iters = 100;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  int momentum_switch_iter = 100;
  std::uint64_t seed = 42;
};

struct TsneResult {
  /// Row-major n x output_dims layout.
  std::vector<double> embedding;
  std::size_t points = 0;
  std::size_t dims = 0;
  /// KL divergence after each iteration (unexaggerated scale).
  std::vector<double> kl_history;

  double x(std::size_t i, std::size_t d) const {
    return embedding[i * dims + d];
  }
};

/// Runs exact t-SNE over the rows of `data`. Throws std::invalid_argument
/// when there are fewer than 3 * perplexity points or parameters are
/// degenerate.
TsneResult run_tsne(const embedding::EmbeddingMatrix& data,
                    TsneParams params = TsneParams());

/// Convenience overload over a flat row-major buffer.
TsneResult run_tsne(const std::vector<float>& rows, std::size_t n,
                    std::size_t dim, TsneParams params = TsneParams());

}  // namespace netobs::tsne
