// Line-rate sharded ingest: packets -> interned hostname events.
//
// The single-threaded observers (net/observer.hpp) top out on one core
// because every packet funnels through one flow table and every event
// carries an owning std::string. This pipeline removes both limits without
// changing what the profiler sees:
//
//   producer ──push()──> [shard router: identity_key % S]
//        │ batches of Packets, one lane per shard
//        v
//   worker 0..S-1: private SniFlowEngine/DnsFlowEngine + private UserDemux
//        │ InternedEvent{user_id, host_id, timestamp} (16-byte POD,
//        │ hostname interned through a shared util::InternPool)
//        v
//   bounded MPSC EventRing  ──batched drain──>  consumer thread ──> Sink
//
// Identity guarantees (what makes the refactor safe):
//   - packets are sharded by UserDemux::identity_key — the same key user
//     ids are assigned from — so each sender's flows AND user state live on
//     exactly one shard; no cross-thread state, no locks on the hot path;
//   - shard s allocates user ids s, s+S, s+2S, ... (UserDemux stride), so
//     ids never collide across shards and a 1-shard pipeline (stride 1)
//     assigns exactly the ids the legacy observers would;
//   - with shards=1 the event stream is bit-identical to running the
//     observers directly; with shards>1 each user's event subsequence is
//     unchanged (per-shard FIFO end to end), only the interleaving between
//     users differs — and the profiler's SessionStore is per-user.
//
// Backpressure is explicit: kBlock (lossless; workers wait for the
// consumer) or kDropOldest (bounded latency; oldest queued events are
// discarded and counted in IngestStats::dropped).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/observer.hpp"
#include "util/intern_pool.hpp"

namespace netobs::obs {
class FlightRecorder;
}

namespace netobs::net {

/// What crosses the worker->profiler boundary: a 16-byte POD instead of an
/// owning string. `host_id` resolves through the pipeline's InternPool.
struct InternedEvent {
  std::uint32_t user_id = 0;
  util::InternPool::Id host_id = util::InternPool::kInvalidId;
  util::Timestamp timestamp = 0;

  bool operator==(const InternedEvent&) const = default;
};

enum class BackpressurePolicy {
  kBlock,       ///< producer-side loss-free: workers wait for ring space
  kDropOldest,  ///< bounded latency: discard the oldest queued events
};

struct IngestOptions {
  std::size_t shards = 1;
  Vantage vantage = Vantage::kWifiProvider;
  bool sni = true;  ///< run the SNI/QUIC engine
  bool dns = false; ///< run the DNS engine
  SniObserverOptions sni_options;
  DnsObserverOptions dns_options;
  std::size_t ring_capacity = 1 << 14;  ///< events buffered toward the sink
  std::size_t batch_size = 256;         ///< packets per worker hand-off
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Sync per-shard deltas into the obs registry after every batch
  /// (labelled netobs_ingest_* series). Off for allocation benchmarks.
  bool registry_metrics = true;
  /// Optional provenance tracer (obs/flight_recorder.hpp). When set, shard
  /// workers open records for sampled events (kParse/kEnqueue) and the
  /// consumer stamps kDequeue; must outlive the pipeline.
  obs::FlightRecorder* flight = nullptr;
  /// Shard-affine delivery: when set, each worker hands its event batches
  /// to this callback *on the worker thread* — the MPSC ring and consumer
  /// thread are bypassed entirely, so per-shard delivery is lock-free and
  /// FIFO. The callback must tolerate concurrent calls from distinct
  /// shards (it receives the shard index; pair it with a shard-affine
  /// receiver such as ProfilingService::ingest_interned_shard). The span
  /// is only valid for the duration of the call. kDequeue flight stamps
  /// are skipped in this mode (there is no queue hop).
  std::function<void(std::size_t shard, std::span<const InternedEvent>)>
      shard_sink;
};

/// Aggregated pipeline counters. Exact after flush(); a live snapshot
/// otherwise (per-shard totals are synced at batch boundaries).
struct IngestStats {
  ObserverStats observer;       ///< summed across shards
  std::uint64_t pushed = 0;     ///< packets accepted by push()
  std::uint64_t delivered = 0;  ///< events handed to the sink
  std::uint64_t dropped = 0;    ///< events discarded under kDropOldest
  std::size_t shards = 0;
  std::size_t queue_depth = 0;  ///< instantaneous ring occupancy
  std::size_t queue_hwm = 0;    ///< ring occupancy high-watermark
  double stall_seconds = 0.0;   ///< worker time blocked on a full ring
  std::size_t distinct_users = 0;
  std::size_t distinct_hostnames = 0;
};

/// Bounded multi-producer single-consumer ring of InternedEvents with
/// batched push/drain. Producers are the shard workers; the consumer is
/// the pipeline's sink thread.
class EventRing {
 public:
  EventRing(std::size_t capacity, BackpressurePolicy policy);

  /// Pushes a batch, blocking (kBlock) or discarding the oldest queued
  /// events (kDropOldest) when full. Returns how many events were dropped
  /// to make room. After close(), pushes are discarded entirely. When
  /// `stalled_seconds` is non-null it receives the wall time this call
  /// spent blocked waiting for ring space (0 when it never waited).
  std::size_t push(std::span<const InternedEvent> batch,
                   double* stalled_seconds = nullptr);

  /// Appends up to `max` events to `out`, blocking while the ring is empty
  /// and open. Returns false once the ring is closed and drained.
  bool drain(std::vector<InternedEvent>& out, std::size_t max);

  void close();
  std::size_t size() const;
  std::uint64_t dropped() const;
  std::size_t capacity() const { return capacity_; }

  /// Highest occupancy the ring ever reached (backpressure headroom gauge).
  std::size_t high_watermark() const;
  /// Total producer wall time spent blocked on a full ring (kBlock only).
  double stall_seconds() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<InternedEvent> buf_;
  std::size_t capacity_;
  std::size_t head_ = 0;   ///< index of the oldest event
  std::size_t count_ = 0;
  BackpressurePolicy policy_;
  bool closed_ = false;
  std::uint64_t dropped_ = 0;
  std::size_t hwm_ = 0;           ///< max count_ ever observed
  double stall_seconds_ = 0.0;    ///< cumulative blocked-push time
};

/// One shard's synchronous core: private demux + engines + intern calls.
/// Public so benchmarks can time per-shard work serially (the "ideal
/// speedup" denominator) with exactly the code the workers run.
class ShardEngine {
 public:
  ShardEngine(const IngestOptions& options, std::uint32_t shard_index,
              util::InternPool& pool);

  // The engines hold references into this object; it must not move.
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Feeds one packet; appends the resulting events to `out`.
  void process(const Packet& packet, std::vector<InternedEvent>& out);

  const ObserverStats& stats() const { return stats_; }
  const UserDemux& demux() const { return demux_; }
  std::size_t pending_flows() const {
    return sni_ ? sni_->pending_flows() : 0;
  }

  /// Estimated heap footprint of the flow engines (tables + buffers + dedupe
  /// map). Worker thread only — the pipeline mirrors it into an atomic.
  std::size_t flow_memory_bytes() const {
    return (sni_ ? sni_->memory_bytes() : 0) +
           (dns_ ? dns_->memory_bytes() : 0);
  }
  /// Estimated heap footprint of the user-identity map (same caveat).
  std::size_t demux_memory_bytes() const { return demux_.memory_bytes(); }

  /// Flight-recorder keys collected by process() for events that passed the
  /// sampling decision this batch. The worker stamps them kEnqueue before
  /// the ring push and clears the vector.
  std::vector<std::uint64_t>& sampled_keys() { return sampled_keys_; }

 private:
  util::InternPool& pool_;
  UserDemux demux_;
  ObserverStats stats_;
  obs::FlightRecorder* flight_;
  std::uint32_t shard_index_;
  std::optional<SniFlowEngine> sni_;
  std::optional<DnsFlowEngine> dns_;
  std::vector<RawEvent> dns_raw_;
  std::vector<std::uint64_t> sampled_keys_;

  void maybe_record(std::uint32_t user_id, util::InternPool::Id host_id,
                    util::Timestamp timestamp, std::string_view hostname);
};

/// The multi-threaded pipeline. push()/flush()/stop() are single-producer:
/// call them from one thread (the capture loop).
class IngestPipeline {
 public:
  /// Receives batches of events on the consumer thread. The span is only
  /// valid for the duration of the call.
  using Sink = std::function<void(std::span<const InternedEvent>)>;

  IngestPipeline(IngestOptions options, util::InternPool& pool, Sink sink);
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  void push(const Packet& packet);
  void push(std::span<const Packet> packets);

  /// Blocks until every pushed packet has been processed and every
  /// resulting event has been delivered to the sink (or counted dropped).
  void flush();

  /// flush() + join all threads. Idempotent; the destructor calls it.
  void stop();

  IngestStats stats() const;
  std::size_t queue_depth() const { return ring_.size(); }
  const IngestOptions& options() const { return options_; }
  util::InternPool& pool() { return pool_; }

  /// One-line summary for /statusz.
  std::string status() const;

  /// Which shard owns a packet's sender at this vantage.
  static std::size_t shard_of(const Packet& packet, Vantage vantage,
                              std::size_t shards);

 private:
  struct Worker;

  void worker_loop(Worker& w);
  void consumer_loop();
  void enqueue_staging(Worker& w);
  void sync_worker_metrics(Worker& w);
  void register_memory_probes();
  void remove_memory_probes();

  IngestOptions options_;
  util::InternPool& pool_;
  Sink sink_;
  EventRing ring_;

  // MemoryAccountant::global() probe handles (registered only with
  // registry_metrics on; removed in stop()).
  std::vector<std::uint64_t> memory_probe_handles_;
  std::uint64_t user_probe_handle_ = 0;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread consumer_;

  std::uint64_t pushed_ = 0;  ///< producer-thread only

  mutable std::mutex consumer_mutex_;
  std::condition_variable consumer_cv_;
  std::uint64_t delivered_ = 0;  ///< guarded by consumer_mutex_
  /// Events handed to shard_sink on worker threads (direct mode only).
  std::atomic<std::uint64_t> delivered_direct_{0};
  bool stopped_ = false;         ///< producer-thread only
};

}  // namespace netobs::net
