// The parallel-retrain contracts of embedding/sgns.cpp and the pool
// invariance of the IVF build chain (embedding/kmeans.cpp +
// embedding/ivf_index.cpp):
//   - threads == 1 reproduces the pre-pool seed trainer bit for bit — the
//     model digest equals the recorded golden constant;
//   - Hogwild (threads > 1) is only statistically reproducible, but its
//     epoch losses, pair counts and embedding quality (topic purity) stay
//     within tolerance of the serial run;
//   - the k-means quantizer (including the grouped pruned assignment at
//     paper-scale centroid counts) and the int8 list encoding are
//     bit-identical for any ThreadPool size, measured by the index
//     contents hash.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "bench/train_baseline.hpp"
#include "embedding/ivf_index.hpp"
#include "embedding/kmeans.hpp"
#include "embedding/knn.hpp"
#include "embedding/sgns.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

namespace netobs::embedding {
namespace {

/// Nearest-neighbour topic purity of a model trained on the frozen
/// make_train_corpus corpus: fraction of sampled tokens whose closest
/// other token shares the ground-truth topic. The Hogwild runs may move
/// individual floats, but they must not move this.
double topic_purity(const HostEmbedding& model) {
  CosineKnnIndex index(model.central());
  std::size_t sampled = 0, pure = 0;
  for (TokenId id = 0; id < model.size() && sampled < 300;
       id += 7, ++sampled) {
    auto row = model.vector_of(id);
    auto top = index.query(std::vector<float>(row.begin(), row.end()), 2);
    for (const auto& nb : top) {
      if (nb.id == id) continue;
      pure += bench::train_corpus_topic(model.token(nb.id)) ==
                      bench::train_corpus_topic(model.token(id))
                  ? 1
                  : 0;
      break;
    }
  }
  return sampled == 0 ? 0.0
                      : static_cast<double>(pure) /
                            static_cast<double>(sampled);
}

/// Reduced frozen corpus for the parity tests: same generator, fewer
/// sequences/epochs, so training twice stays cheap.
bench::TrainBaselineOptions parity_options() {
  bench::TrainBaselineOptions opts;
  opts.sequences = 2000;
  opts.epochs = 2;
  return opts;
}

TEST(TrainParallel, ThreadsOneReproducesSeedDigest) {
  // The full frozen corpus/params the golden digest was recorded under
  // (bench/train_baseline.hpp). Any numeric drift on the serial path —
  // reordered updates, a changed RNG stream, a different LR schedule —
  // flips the SHA-256 of the saved model.
  auto corpus = bench::make_train_corpus({});
  SgnsTrainer trainer(bench::canonical_train_params(1, 3));
  auto model = trainer.fit(corpus);
  EXPECT_EQ(bench::model_digest(model), bench::kTrainDigestT1);
  ASSERT_EQ(trainer.worker_cpu_seconds().size(), 1U);
  EXPECT_GT(trainer.total_pairs(), 0U);
  EXPECT_GT(trainer.pairs_per_second(), 0.0);
}

TEST(TrainParallel, HogwildStaysWithinToleranceOfSerial) {
  auto opts = parity_options();
  auto corpus = bench::make_train_corpus(opts);

  SgnsTrainer serial(bench::canonical_train_params(1, opts.epochs));
  auto model1 = serial.fit(corpus);
  SgnsTrainer hogwild(bench::canonical_train_params(4, opts.epochs));
  auto model4 = hogwild.fit(corpus);

  // Same vocabulary either way: sharding only touches the SGD phase.
  ASSERT_EQ(model4.size(), model1.size());
  ASSERT_EQ(hogwild.worker_cpu_seconds().size(), 4U);

  // Pair counts differ only through the per-worker dynamic-window RNG
  // streams, not through dropped work.
  double pair_ratio = static_cast<double>(hogwild.total_pairs()) /
                      static_cast<double>(serial.total_pairs());
  EXPECT_GT(pair_ratio, 0.9);
  EXPECT_LT(pair_ratio, 1.1);

  // Documented loss tolerance (sgns.hpp): per-epoch mean loss within 10%.
  ASSERT_EQ(hogwild.epoch_losses().size(), serial.epoch_losses().size());
  for (std::size_t e = 0; e < serial.epoch_losses().size(); ++e) {
    double want = serial.epoch_losses()[e];
    EXPECT_NEAR(hogwild.epoch_losses()[e], want, 0.1 * want)
        << "epoch " << e;
  }

  // Embedding quality parity: both models cluster hostnames by topic.
  double purity1 = topic_purity(model1);
  double purity4 = topic_purity(model4);
  EXPECT_GE(purity1, 0.7);
  EXPECT_GE(purity4, 0.7);
  EXPECT_NEAR(purity4, purity1, 0.08);
}

TEST(TrainParallel, KmeansPrunedAssignmentIsPoolInvariant) {
  // Paper-scale centroid count (>= 128) with the default assignment fanout
  // activates the grouped pruned path; the clustering must not depend on
  // the pool size — same chunk grain, partial sums merged in fixed order.
  constexpr std::size_t kRows = 8000, kDim = 24;
  EmbeddingMatrix m(kRows, kDim);
  util::Pcg32 rng(4242, 0xc1);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (float& v : m.row(r)) v = static_cast<float>(rng.normal());
    util::normalize(m.row(r));
  }
  KmeansParams kp;
  kp.clusters = 160;
  kp.assign_fanout = 4;
  auto serial = spherical_kmeans(m, kp);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    util::ThreadPool pool(threads);
    auto pooled = spherical_kmeans(m, kp, &pool);
    ASSERT_EQ(pooled.assignment, serial.assignment)
        << threads << "-thread pool changed the clustering";
    for (std::size_t c = 0; c < kp.clusters; ++c) {
      auto a = serial.centroids.row(c);
      auto b = pooled.centroids.row(c);
      for (std::size_t j = 0; j < kDim; ++j) {
        ASSERT_EQ(a[j], b[j]) << "centroid " << c << " dim " << j;
      }
    }
  }
}

TEST(TrainParallel, IvfContentsHashIsPoolInvariant) {
  // Rows > 2x the encode grain so the pooled builds take the parallel
  // two-pass encode, and enough lists for the grouped assignment: the
  // SHA-256 over centroids + every list must come out identical for any
  // pool size (the oracle the bench gate also enforces at 470K rows).
  constexpr std::size_t kRows = 20000, kDim = 24, kTopics = 40;
  EmbeddingMatrix centers(kTopics, kDim);
  util::Pcg32 rng(7, 0xc1);
  for (std::size_t t = 0; t < kTopics; ++t) {
    for (float& v : centers.row(t)) v = static_cast<float>(rng.normal());
    util::normalize(centers.row(t));
  }
  EmbeddingMatrix m(kRows, kDim);
  for (std::size_t r = 0; r < kRows; ++r) {
    auto center = centers.row(r % kTopics);
    for (std::size_t j = 0; j < kDim; ++j) {
      m.row(r)[j] = center[j] + static_cast<float>(0.15 * rng.normal());
    }
  }
  IvfParams p;
  p.nlists = 160;
  IvfKnnIndex serial(m, p);
  const std::string want = serial.contents_hash();
  EXPECT_EQ(want.size(), 64U);
  EXPECT_GT(serial.build_stats().total_s, 0.0);
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    util::ThreadPool pool(threads);
    IvfKnnIndex pooled(m, p, &pool);
    EXPECT_EQ(pooled.contents_hash(), want)
        << threads << "-thread pool changed the index contents";
  }
}

}  // namespace
}  // namespace netobs::embedding
