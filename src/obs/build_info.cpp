#include "obs/build_info.hpp"

#include <chrono>
#include <cstdint>

#include "util/simd.hpp"

#ifndef NETOBS_GIT_DESCRIBE
#define NETOBS_GIT_DESCRIBE "unknown"
#endif
#ifndef NETOBS_BUILD_TYPE
#define NETOBS_BUILD_TYPE "unknown"
#endif
#ifndef NETOBS_SANITIZER
#define NETOBS_SANITIZER "none"
#endif

namespace netobs::obs {

namespace {

// Static-initialisation epoch: close enough to process start that uptime is
// honest, and needs no hook in main().
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{
      NETOBS_GIT_DESCRIBE,
      NETOBS_BUILD_TYPE,
      NETOBS_SANITIZER,
#if defined(__VERSION__)
      __VERSION__,
#else
      "unknown",
#endif
      util::simd::tier_name(util::simd::active_tier()),
  };
  return info;
}

double process_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start)
      .count();
}

std::vector<std::pair<std::string, std::string>> build_info_rows() {
  const BuildInfo& info = build_info();
  return {
      {"build_git", info.git_describe},
      {"build_type", info.build_type},
      {"build_sanitizer", info.sanitizer},
      {"build_compiler", info.compiler},
      {"build_simd_tier", info.simd_tier},
      {"process_uptime_seconds",
       std::to_string(static_cast<std::int64_t>(process_uptime_seconds()))},
  };
}

}  // namespace netobs::obs
