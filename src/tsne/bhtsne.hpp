// Barnes-Hut t-SNE (van der Maaten, JMLR 2014): O(n log n) approximation
// of the exact algorithm in tsne.hpp.
//
// The paper projects ~3K second-level domains (Figure 4); the exact O(n^2)
// gradient is fine there but does not scale to a full 470K-host vocabulary.
// This implementation uses the standard two approximations:
//   - sparse input affinities: P is computed over each point's 3*perplexity
//     nearest neighbours only (exact brute-force kNN),
//   - quadtree-approximated repulsive forces with the Barnes-Hut opening
//     criterion (theta).
#pragma once

#include "tsne/tsne.hpp"

namespace netobs::tsne {

struct BhTsneParams {
  double perplexity = 30.0;
  int iterations = 500;
  double learning_rate = 200.0;
  double theta = 0.5;  ///< Barnes-Hut accuracy knob; 0 = exact repulsion
  double early_exaggeration = 12.0;
  int exaggeration_iters = 100;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  int momentum_switch_iter = 100;
  std::uint64_t seed = 42;
};

/// Runs Barnes-Hut t-SNE to 2 dimensions over row-major input rows.
/// kl_history reports the KL divergence w.r.t. the *sparse* P (comparable
/// across iterations, not with exact t-SNE's dense KL).
TsneResult run_bhtsne(const std::vector<float>& rows, std::size_t n,
                      std::size_t dim, BhTsneParams params = BhTsneParams());

TsneResult run_bhtsne(const embedding::EmbeddingMatrix& data,
                      BhTsneParams params = BhTsneParams());

}  // namespace netobs::tsne
