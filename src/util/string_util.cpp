#include "util/string_util.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace netobs::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_nonempty(std::string_view s, char delim) {
  std::vector<std::string> out;
  for (auto& tok : split(s, delim)) {
    if (!tok.empty()) out.push_back(std::move(tok));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool is_valid_hostname(std::string_view host) {
  if (host.empty() || host.size() > 253) return false;
  std::size_t label_start = 0;
  std::size_t dots = 0;
  for (std::size_t i = 0; i <= host.size(); ++i) {
    if (i == host.size() || host[i] == '.') {
      std::size_t len = i - label_start;
      if (len == 0 || len > 63) return false;
      if (host[label_start] == '-' || host[i - 1] == '-') return false;
      if (i < host.size()) ++dots;
      label_start = i + 1;
      continue;
    }
    unsigned char c = static_cast<unsigned char>(host[i]);
    if (!(std::isalnum(c) != 0 || c == '-')) return false;
  }
  return dots >= 1;
}

bool host_matches_domain(std::string_view host, std::string_view domain) {
  if (host.size() == domain.size()) return host == domain;
  if (host.size() < domain.size() + 1) return false;
  return ends_with(host, domain) &&
         host[host.size() - domain.size() - 1] == '.';
}

namespace {

// Multi-label public suffixes common in the paper's dataset (Spain + Latin
// America + a few globals). A full PSL is unnecessary: the synthetic world
// and all tests draw from these.
constexpr std::array<std::string_view, 22> kMultiLabelSuffixes = {
    "com.es", "org.es", "nom.es", "gob.es", "edu.es",
    "co.uk",  "org.uk", "ac.uk",
    "com.ve", "gob.ve", "org.ve", "edu.ve",
    "com.co", "gov.co", "edu.co", "org.co",
    "com.pe", "gob.pe", "edu.pe",
    "com.mx", "gob.mx", "com.ar",
};

}  // namespace

std::string second_level_domain(std::string_view host) {
  auto labels = split(host, '.');
  if (labels.size() <= 2) return std::string(host);

  // Check whether the last two labels form a registered multi-label suffix.
  std::string last2 = labels[labels.size() - 2] + "." + labels.back();
  std::size_t suffix_labels = 1;
  for (auto s : kMultiLabelSuffixes) {
    if (last2 == s) {
      suffix_labels = 2;
      break;
    }
  }
  std::size_t keep = suffix_labels + 1;  // registrable = suffix + one label
  if (labels.size() <= keep) return std::string(host);

  std::string out;
  for (std::size_t i = labels.size() - keep; i < labels.size(); ++i) {
    if (!out.empty()) out += '.';
    out += labels[i];
  }
  return out;
}

std::size_t label_count(std::string_view host) {
  return split(host, '.').size();
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace netobs::util
