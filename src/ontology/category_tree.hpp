// Hierarchical category ontology, modelled on the Google Adwords Display
// Planner taxonomy the paper uses for host labeling (Section 5.4):
//   - 1397 categories in a hierarchy of uneven depth (Telecom has 2
//     subcategories; Computers & Electronics has 123 over 5 levels),
//   - truncated to the first two levels for profiling -> 328 categories.
//
// CategoryTree stores the full hierarchy; CategorySpace is the flattened
// <= 2-level view in which session profiles (the c-vectors of Section 4.1)
// live.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace netobs::ontology {

using CategoryId = std::uint32_t;
constexpr CategoryId kNoCategory = static_cast<CategoryId>(-1);

struct Category {
  std::string name;                 ///< path-style, e.g. "Travel/Hotels"
  CategoryId parent = kNoCategory;  ///< kNoCategory for roots
  int level = 0;                    ///< 0 for top-level categories
};

class CategoryTree {
 public:
  /// Adds a top-level category; returns its id.
  CategoryId add_root(std::string name);

  /// Adds a child of `parent`; name is stored as "<parent path>/<name>".
  /// Throws std::out_of_range for an invalid parent.
  CategoryId add_child(CategoryId parent, std::string_view name);

  const Category& at(CategoryId id) const;
  std::size_t size() const { return nodes_.size(); }

  /// Walks up until the node's level is <= max_level.
  CategoryId ancestor_at_level(CategoryId id, int max_level) const;

  /// Ids of all roots, in insertion order.
  std::vector<CategoryId> roots() const;

  /// Ids of all categories with level <= max_level, in id order.
  std::vector<CategoryId> categories_up_to_level(int max_level) const;

  /// Direct children of a node.
  std::vector<CategoryId> children(CategoryId id) const;

  int max_depth() const;

 private:
  std::vector<Category> nodes_;
};

/// Parameters for the synthetic Adwords-like taxonomy. Defaults reproduce
/// the regime of Section 5.4: 34 top-level topics, ~1397 total categories,
/// uneven per-root subtree sizes (some roots barely branch, some grow deep
/// 5-level subtrees), and 328 categories at levels 0-1.
struct AdwordsTreeParams {
  std::size_t top_level = 34;
  std::size_t total_categories = 1397;
  std::size_t second_level_target = 328;  ///< |C|: level-0 + level-1 nodes
  int max_depth = 5;                      ///< deepest allowed level index
};

/// Generates a random hierarchy with the shape above. Deterministic in rng.
CategoryTree make_adwords_like_tree(util::Pcg32& rng,
                                    const AdwordsTreeParams& params = {});

/// The flattened <= 2-level category space "C" of Section 4.1. Profiles and
/// host labels are vectors indexed by the dense ids of this space.
class CategorySpace {
 public:
  /// Builds the space from every tree category with level <= 1.
  explicit CategorySpace(const CategoryTree& tree);

  /// Number of categories |C| (the paper's 328).
  std::size_t size() const { return flat_to_tree_.size(); }

  /// Maps any tree category to its flat id (walking up to level <= 1 first).
  std::size_t flatten(CategoryId tree_id) const;

  /// Tree id backing a flat id.
  CategoryId tree_id(std::size_t flat_id) const;

  const std::string& name(std::size_t flat_id) const;

  /// Flat id of the *top-level* ancestor of a flat id (used to aggregate the
  /// 328-category profiles into the 34 topics of Figure 6).
  std::size_t top_level_of(std::size_t flat_id) const;

  /// Flat ids that are top-level categories.
  const std::vector<std::size_t>& top_level_ids() const {
    return top_level_ids_;
  }

  const CategoryTree& tree() const { return *tree_; }

 private:
  const CategoryTree* tree_;
  std::vector<CategoryId> flat_to_tree_;
  std::vector<std::size_t> tree_to_flat_;  // indexed by tree id
  std::vector<std::size_t> top_of_flat_;
  std::vector<std::size_t> top_level_ids_;
};

/// Host label: the categorisation vector c^h of Section 4.1 — importance of
/// each flat category for the host, each entry in [0,1] (explicitly *not* a
/// probability distribution; see the paper's footnote 2).
using CategoryVector = std::vector<float>;

/// Checks every entry is within [0,1].
bool is_valid_category_vector(const CategoryVector& v);

}  // namespace netobs::ontology
