// Walker alias method: O(1) sampling from a fixed discrete distribution.
//
// Used for SKIPGRAM negative sampling (unigram^0.75 distribution over ~10^5
// hostnames) where a linear or binary-search sampler would dominate training
// time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace netobs::util {

class AliasSampler {
 public:
  AliasSampler() = default;

  /// Builds the alias table from (unnormalised, non-negative) weights.
  /// Throws std::invalid_argument if weights is empty or sums to <= 0.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()).
  std::size_t sample(Pcg32& rng) const;

  std::size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// Normalised probability of index i (for testing).
  double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;         // acceptance probability per bucket
  std::vector<std::uint32_t> alias_; // fallback index per bucket
  std::vector<double> normalized_;   // retained for probability()
};

}  // namespace netobs::util
