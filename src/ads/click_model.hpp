// Synthetic click behaviour — the substitute for the study's real users
// clicking (or not clicking) the ads they were shown.
//
// The model is deliberately simple and symmetric across serving systems: a
// user clicks an impression with probability
//
//   p = clamp(base_ctr * (floor + gain * affinity), 0, max_ctr)
//
// where affinity = <user ground-truth interests, ad topic mix> in [0,1].
// Neither serving system observes ground truth, so CTR differences between
// arms measure only how well each system's *profile* predicts interests —
// exactly the proxy argument of Section 5. base_ctr is calibrated so that
// ad-network CTR lands in the paper's 0.07%-0.84% industry range.
#pragma once

#include "ads/ad_database.hpp"
#include "synth/users.hpp"
#include "util/rng.hpp"

namespace netobs::ads {

struct ClickParams {
  double base_ctr = 0.0009;
  double floor = 0.2;    ///< residual clickiness of irrelevant ads
  double gain = 8.0;     ///< how strongly relevance drives clicks
  double max_ctr = 0.05; ///< nobody clicks half the ads they see
};

class ClickModel {
 public:
  explicit ClickModel(ClickParams params = ClickParams());

  /// Interest-ad affinity in [0,1].
  static double affinity(const synth::User& user, const Ad& ad);

  double click_probability(const synth::User& user, const Ad& ad) const;

  bool click(const synth::User& user, const Ad& ad, util::Pcg32& rng) const;

  const ClickParams& params() const { return params_; }

 private:
  ClickParams params_;
};

}  // namespace netobs::ads
