#include "profile/profiler.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "util/vec_math.hpp"

namespace netobs::profile {

std::vector<std::size_t> SessionProfile::top_categories(std::size_t k) const {
  std::vector<std::size_t> ids(categories.size());
  std::iota(ids.begin(), ids.end(), 0);
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(k),
                    ids.end(), [this](std::size_t a, std::size_t b) {
                      if (categories[a] != categories[b]) {
                        return categories[a] > categories[b];
                      }
                      return a < b;
                    });
  ids.resize(k);
  return ids;
}

SessionProfiler::SessionProfiler(const embedding::HostEmbedding& embedding,
                                 const embedding::KnnIndex& index,
                                 const ontology::HostLabeler& labeler,
                                 ProfilerParams params)
    : embedding_(&embedding),
      index_(&index),
      labeler_(&labeler),
      params_(params) {
  if (params_.knn == 0) {
    throw std::invalid_argument("SessionProfiler: knn must be > 0");
  }
}

/// In-flight profile between the aggregation and normalisation stages.
struct SessionProfiler::Pending {
  SessionProfile profile;
  std::vector<double> accum;
  double total_weight = 0.0;
  // Views into the caller's hostname strings (or the intern pool's stable
  // names) — valid for the duration of one profile call, and cheaper than
  // copying every labeled hostname into the set.
  std::unordered_set<std::string_view> in_session_labeled;

  void contribute(const ontology::CategoryVector& label, double alpha) {
    for (std::size_t i = 0; i < label.size(); ++i) {
      accum[i] += alpha * static_cast<double>(label[i]);
    }
    total_weight += alpha;
  }
};

SessionProfiler::Pending SessionProfiler::begin_profile(
    std::span<const std::string* const> hostnames) const {
  Pending pending;
  SessionProfile& out = pending.profile;
  out.categories.assign(labeler_->category_count(), 0.0F);
  pending.accum.assign(out.categories.size(), 0.0);

  // --- Aggregate session vector s = g({h}).
  std::vector<std::span<const float>> rows;
  std::vector<std::vector<float>> normalized_storage;
  for (const std::string* host : hostnames) {
    auto vec = embedding_->vector_of(*host);
    if (!vec) continue;
    if (params_.aggregation == Aggregation::kNormalizedMean) {
      normalized_storage.emplace_back(vec->begin(), vec->end());
      util::normalize(normalized_storage.back());
    } else {
      rows.push_back(*vec);
    }
  }
  if (params_.aggregation == Aggregation::kNormalizedMean) {
    for (const auto& v : normalized_storage) rows.emplace_back(v);
  }
  out.hosts_in_vocab = rows.size();
  if (rows.empty()) return pending;  // nothing known about this session
  out.session_vector = util::mean_of_rows(rows);

  // --- alpha = 1 contributions of labeled session hosts (L). Labeled kNN
  //     hosts come later via apply_neighbors; only hosts in H_L contribute
  //     category mass (the Eq. 4 sum runs over the intersection with H_L).
  for (const std::string* host : hostnames) {
    if (const auto* label = labeler_->label_of(*host)) {
      if (pending.in_session_labeled.insert(*host).second) {
        pending.contribute(*label, 1.0);
        ++out.labeled_in_session;
      }
    }
  }
  return pending;
}

std::vector<const std::string*> SessionProfiler::resolve_ptrs(
    std::span<const util::InternPool::Id> ids, const util::InternPool& pool) {
  std::vector<const std::string*> ptrs;
  ptrs.reserve(ids.size());
  for (util::InternPool::Id id : ids) ptrs.push_back(&pool.name(id));
  return ptrs;
}

void SessionProfiler::apply_neighbors(
    Pending& pending,
    const std::vector<embedding::Neighbor>& neighbors) const {
  for (const auto& nb : neighbors) {
    const std::string& host = embedding_->token(nb.id);
    if (pending.in_session_labeled.contains(host)) continue;  // alpha = 1
    const auto* label = labeler_->label_of(host);
    if (label == nullptr) continue;
    ++pending.profile.labeled_neighbors;
    double alpha = std::max(0.0F, nb.similarity);  // [x]_+ of Eq. 3
    if (alpha == 0.0) continue;
    pending.contribute(*label, alpha);
  }
}

SessionProfile SessionProfiler::finish_profile(Pending&& pending) const {
  SessionProfile out = std::move(pending.profile);
  out.weight_mass = pending.total_weight;
  if (pending.total_weight > 0.0) {
    for (std::size_t i = 0; i < pending.accum.size(); ++i) {
      // c^h_i in [0,1] and alpha-weighted average keeps c_i in [0,1].
      out.categories[i] =
          static_cast<float>(pending.accum[i] / pending.total_weight);
    }
  }
  return out;
}

namespace {

std::vector<const std::string*> to_ptrs(
    const std::vector<std::string>& hostnames) {
  std::vector<const std::string*> ptrs;
  ptrs.reserve(hostnames.size());
  for (const auto& host : hostnames) ptrs.push_back(&host);
  return ptrs;
}

}  // namespace

SessionProfile SessionProfiler::profile(
    const std::vector<std::string>& hostnames) const {
  Pending pending = begin_profile(to_ptrs(hostnames));
  if (params_.use_embedding_neighbors &&
      !pending.profile.session_vector.empty()) {
    apply_neighbors(
        pending, index_->query(pending.profile.session_vector, params_.knn));
  }
  return finish_profile(std::move(pending));
}

SessionProfile SessionProfiler::profile_interned(
    std::span<const util::InternPool::Id> ids,
    const util::InternPool& pool) const {
  Pending pending = begin_profile(resolve_ptrs(ids, pool));
  if (params_.use_embedding_neighbors &&
      !pending.profile.session_vector.empty()) {
    apply_neighbors(
        pending, index_->query(pending.profile.session_vector, params_.knn));
  }
  return finish_profile(std::move(pending));
}

void SessionProfiler::apply_batch_neighbors(
    std::vector<Pending>& pendings) const {
  // One batched call answers every session with a usable vector — the
  // exact backend sweeps the matrix once for the whole batch, the IVF
  // backend runs its list-centric batched scan; query_batch returns
  // empty neighbour lists for the rest.
  std::vector<std::vector<float>> queries;
  std::vector<std::size_t> owner;
  queries.reserve(pendings.size());
  for (std::size_t i = 0; i < pendings.size(); ++i) {
    if (pendings[i].profile.session_vector.empty()) continue;
    queries.push_back(pendings[i].profile.session_vector);
    owner.push_back(i);
  }
  if (!queries.empty()) {
    auto neighbor_lists = index_->query_batch(queries, params_.knn);
    for (std::size_t qi = 0; qi < owner.size(); ++qi) {
      apply_neighbors(pendings[owner[qi]], neighbor_lists[qi]);
    }
  }
}

std::vector<SessionProfile> SessionProfiler::profile_batch(
    const std::vector<std::vector<std::string>>& sessions) const {
  std::vector<Pending> pendings;
  pendings.reserve(sessions.size());
  for (const auto& hostnames : sessions) {
    pendings.push_back(begin_profile(to_ptrs(hostnames)));
  }
  if (params_.use_embedding_neighbors) apply_batch_neighbors(pendings);

  std::vector<SessionProfile> out;
  out.reserve(pendings.size());
  for (auto& pending : pendings) {
    out.push_back(finish_profile(std::move(pending)));
  }
  return out;
}

std::vector<SessionProfile> SessionProfiler::profile_interned_batch(
    const std::vector<std::vector<util::InternPool::Id>>& sessions,
    const util::InternPool& pool) const {
  std::vector<Pending> pendings;
  pendings.reserve(sessions.size());
  for (const auto& ids : sessions) {
    pendings.push_back(begin_profile(resolve_ptrs(ids, pool)));
  }
  if (params_.use_embedding_neighbors) apply_batch_neighbors(pendings);

  std::vector<SessionProfile> out;
  out.reserve(pendings.size());
  for (auto& pending : pendings) {
    out.push_back(finish_profile(std::move(pending)));
  }
  return out;
}

}  // namespace netobs::profile
