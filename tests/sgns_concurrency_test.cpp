// SgnsConcurrency: the Hogwild training hot spot under the sanitizer
// smoke gate (tests/CMakeLists.txt wires this suite into sanitizer_smoke,
// the ctest run under -DNETOBS_SANITIZE=thread). Under TSan the trainer
// routes shared-row updates through relaxed atomics (sgns.cpp's
// NETOBS_TSAN path), so these multi-worker fits must come back clean; in
// plain builds they are just fast functional checks of the pool dispatch.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "embedding/sgns.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace netobs::embedding {
namespace {

/// Small two-topic corpus: enough structure that training does real
/// updates on shared rows (the contended regime), small enough for a
/// sanitizer build to chew through quickly.
std::vector<Sequence> tiny_corpus(std::size_t sequences) {
  util::Pcg32 rng(99, 0x5eed);
  std::vector<Sequence> corpus(sequences);
  for (std::size_t s = 0; s < sequences; ++s) {
    std::size_t topic = s % 2;
    corpus[s].reserve(12);
    for (int t = 0; t < 12; ++t) {
      corpus[s].push_back("host" + std::to_string(rng.next_below(40)) +
                          ".topic" + std::to_string(topic));
    }
  }
  return corpus;
}

SgnsParams hogwild_params(std::size_t threads, SgnsMode mode) {
  SgnsParams p;
  p.dim = 16;
  p.epochs = 2;
  p.threads = threads;
  p.mode = mode;
  return p;
}

void expect_trained(const SgnsTrainer& trainer, const HostEmbedding& model) {
  EXPECT_GT(model.size(), 0U);
  for (double loss : trainer.epoch_losses()) {
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(loss, 0.0);
  }
  EXPECT_GT(trainer.total_pairs(), 0U);
}

TEST(SgnsConcurrency, HogwildSkipGramWithOwnedPool) {
  auto corpus = tiny_corpus(300);
  SgnsTrainer trainer(hogwild_params(4, SgnsMode::kSkipGram));
  auto model = trainer.fit(corpus);
  expect_trained(trainer, model);
  EXPECT_EQ(trainer.worker_cpu_seconds().size(), 4U);
}

TEST(SgnsConcurrency, HogwildSkipGramOnCallerPool) {
  // The service path: one long-lived pool carries every daily retrain.
  auto corpus = tiny_corpus(300);
  util::ThreadPool pool(4);
  SgnsTrainer trainer(hogwild_params(4, SgnsMode::kSkipGram));
  auto first = trainer.fit(corpus, &pool);
  expect_trained(trainer, first);
  // Warm start over the same pool (fit_warm is the warm_start retrain).
  auto second = trainer.fit_warm(corpus, first, &pool);
  expect_trained(trainer, second);
  EXPECT_EQ(second.size(), first.size());
}

TEST(SgnsConcurrency, HogwildCbowSharesTheAtomicPath) {
  // CBOW accumulates context rows while other workers update them — the
  // other race the TSan build must see through the atomic snapshots.
  auto corpus = tiny_corpus(300);
  SgnsTrainer trainer(hogwild_params(4, SgnsMode::kCbow));
  auto model = trainer.fit(corpus);
  expect_trained(trainer, model);
}

}  // namespace
}  // namespace netobs::embedding
