// Section 6.4 (headline result) — Click-Through Rate comparison.
//
// Paper: over one month / 1329 users, eavesdropper ads reached CTR 0.217%
// vs 0.168% for ad-network ads; a two-tailed paired t-test on per-user
// CTRs gave p = 0.113 -> no significant difference, i.e. profiles built
// from TLS-leaked hostnames are as good as ad-network profiles. Also
// reproduced: the §6 headline counters (connections, hostnames, ads
// received/replaced).
#include <iostream>

#include "ads/experiment.hpp"
#include "bench/common.hpp"
#include "eval/report.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {1000, 5, 2021, ""});
  auto world = bench::make_world(cfg);
  util::print_banner(std::cout, "Section 6.4: CTR experiment (headline)");
  bench::print_scale_note(cfg, world);

  ads::ExperimentParams params;
  params.collection_days = 2;
  params.profiling_days = cfg.days;
  params.seed = cfg.seed;
  // Scale-dependent knobs: the paper's N=1000 neighbours are 0.2% of its
  // 470K-host universe; at bench scale the same *fraction* of the daily
  // vocabulary keeps the category mix equally selective.
  params.service.profiler.knn = 50;
  params.service.profiler.aggregation = profile::Aggregation::kNormalizedMean;
  params.service.vocab.min_count = 2;
  params.service.vocab.subsample_threshold = 1e-4;
  params.service.sgns.epochs = 15;
  params.replace_prob = 0.35;
  ads::ExperimentRunner runner(*world.universe, *world.population,
                               synth::BrowsingParams(), params);
  auto result = runner.run();

  util::Table volume({"counter", "measured", "paper (full scale)"});
  volume.add_row({"connections (profiling phase)",
                  std::to_string(result.connections), "75M"});
  volume.add_row({"unique hostnames",
                  std::to_string(result.unique_hostnames), "470K"});
  volume.add_row({"connections filtered as trackers",
                  util::format("%zu (%.1f%%)", result.filtered_connections,
                               100.0 * static_cast<double>(
                                           result.filtered_connections) /
                                   static_cast<double>(result.connections)),
                  "6.1M (~8%)"});
  volume.add_row({"extension reports", std::to_string(result.reports), "-"});
  volume.add_row({"ads received",
                  std::to_string(result.original.impressions +
                                 result.eavesdropper.impressions),
                  "270K"});
  volume.add_row({"ads replaced", std::to_string(result.replacements),
                  "41K"});
  volume.add_row({"model retrainings (daily)",
                  std::to_string(result.retrainings), "~30"});
  volume.print(std::cout);

  util::Table ctr({"arm", "impressions", "clicks", "CTR", "paper CTR"});
  ctr.add_row({"Eavesdropper (ours)",
               std::to_string(result.eavesdropper.impressions),
               std::to_string(result.eavesdropper.clicks),
               eval::format_ctr(result.eavesdropper.ctr()), "0.217%"});
  ctr.add_row({"Original (ad-networks)",
               std::to_string(result.original.impressions),
               std::to_string(result.original.clicks),
               eval::format_ctr(result.original.ctr()), "0.168%"});
  ctr.add_row({"Random control (counterfactual)",
               std::to_string(result.random_control.impressions),
               std::to_string(result.random_control.clicks),
               eval::format_ctr(result.random_control.ctr()), "-"});
  ctr.print(std::cout);

  util::Table test({"statistic", "measured", "paper"});
  test.add_row({"paired users", std::to_string(result.paired_users), "-"});
  test.add_row({"paired t-test t",
                util::format("%.4f", result.paired_ttest.t_statistic), "-"});
  test.add_row({"paired t-test p (two-tailed)",
                util::format("%.4f", result.paired_ttest.p_value),
                "0.11333"});
  test.add_row({"significant at p<.05",
                result.paired_ttest.significant() ? "yes" : "no", "no"});
  test.add_row({"pooled two-proportion z p",
                util::format("%.4f", result.proportion_test.p_value), "-"});
  test.print(std::cout);

  bool eaves_wins = result.eavesdropper.ctr() >= result.original.ctr();
  bool random_loses =
      result.random_control.ctr() < result.original.ctr() &&
      result.random_control.ctr() < result.eavesdropper.ctr();
  std::cout << "\nshape checks:\n"
            << "  eavesdropper CTR >= ad-network CTR: "
            << (eaves_wins ? "yes" : "NO") << " (paper: yes, 0.217 vs 0.168)\n"
            << "  random control below both targeted arms: "
            << (random_loses ? "yes" : "NO") << "\n"
            << "  paired difference not significant: "
            << (!result.paired_ttest.significant() ? "yes" : "NO")
            << " (paper: p=0.113)\n"
            << "  both CTRs in industry range 0.07%-0.84%: "
            << ((result.eavesdropper.ctr() > 0.0007 &&
                 result.eavesdropper.ctr() < 0.0084 &&
                 result.original.ctr() > 0.0007 &&
                 result.original.ctr() < 0.0084)
                    ? "yes"
                    : "NO")
            << "\n";
  bench::dump_telemetry(cfg);
  return 0;
}
