// Leveled structured logging for the library and its operational binaries.
//
// One process-wide Logger (text or JSON lines, key=value fields, level
// filtering) replaces ad-hoc std::cerr prints so long-running runs emit
// machine-greppable progress lines next to the metrics plane:
//
//   obs::log_info("profile.service", "retrain complete",
//                 {{"day", "3"}, {"vocab", "1412"}});
//   -> 2026-08-05T10:21:07.114Z INFO  profile.service retrain complete day=3 vocab=1412
//
// Operational properties:
//   - level filter is one relaxed atomic load, so disabled levels cost a
//     branch (NETOBS_LOG_LEVEL=debug|info|warn|error|off, default info;
//     NETOBS_LOG_FORMAT=json switches to JSON lines),
//   - per-site rate limiting: each site emits at most N lines per second
//     (default 10); the excess is counted, not printed, so a hot WARN in
//     the packet loop cannot melt the sink,
//   - the metrics plane sees the log stream: emitted WARN/ERROR lines
//     increment netobs_log_messages_total{level=...} and suppressed lines
//     increment netobs_log_suppressed_total, so a scrape shows error bursts
//     even when nobody is tailing stderr.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace netobs::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// "debug", "info", "warn", "error" (lowercase, for the metrics label).
const char* log_level_name(LogLevel level);

enum class LogFormat { kText, kJson };

/// Ordered key/value context attached to one log line.
using LogFields = std::vector<std::pair<std::string, std::string>>;

class Logger {
 public:
  /// The process-wide logger all library call sites use.
  static Logger& global();

  Logger();  ///< level/format initialised from the NETOBS_LOG_* environment
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool should_log(LogLevel level) const {
    return level != LogLevel::kOff && level >= this->level();
  }

  void set_format(LogFormat format) {
    json_.store(format == LogFormat::kJson, std::memory_order_relaxed);
  }
  LogFormat format() const {
    return json_.load(std::memory_order_relaxed) ? LogFormat::kJson
                                                 : LogFormat::kText;
  }

  /// Redirects output (tests); nullptr restores the default std::cerr.
  void set_sink(std::ostream* sink);

  /// Per-site lines-per-second cap; 0 disables rate limiting.
  void set_site_limit_per_second(std::uint64_t limit);

  /// Emits one line. `site` is the instrumentation site ("net.observer",
  /// "profile.service") — it keys the rate limiter and is printed verbatim.
  void log(LogLevel level, std::string_view site, std::string_view message,
           const LogFields& fields = {});

  std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  struct SiteState {
    double window_start = 0.0;
    std::uint64_t in_window = 0;
  };

  std::atomic<int> level_;
  std::atomic<bool> json_{false};
  std::atomic<std::uint64_t> site_limit_{10};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> suppressed_{0};

  std::mutex mutex_;  ///< guards sink_ writes and sites_
  std::ostream* sink_ = nullptr;
  std::unordered_map<std::string, SiteState> sites_;
};

// Convenience wrappers over Logger::global().
void log_debug(std::string_view site, std::string_view message,
               const LogFields& fields = {});
void log_info(std::string_view site, std::string_view message,
              const LogFields& fields = {});
void log_warn(std::string_view site, std::string_view message,
              const LogFields& fields = {});
void log_error(std::string_view site, std::string_view message,
               const LogFields& fields = {});

}  // namespace netobs::obs
