#include "util/vec_math.hpp"

#include <cassert>
#include <cmath>

#include "util/simd.hpp"

namespace netobs::util {

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  return simd::dot(a.data(), b.data(), a.size());
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  simd::axpy(alpha, x.data(), y.data(), x.size());
}

void scale(std::span<float> x, float alpha) {
  simd::scale(x.data(), alpha, x.size());
}

void fused_grad_update(float g, std::span<const float> in, std::span<float> out,
                       std::span<float> grad) {
  assert(in.size() == out.size() && in.size() == grad.size());
  simd::fused_grad_update(g, in.data(), out.data(), grad.data(), in.size());
}

float l2_norm(std::span<const float> x) {
  return std::sqrt(simd::dot(x.data(), x.data(), x.size()));
}

void normalize(std::span<float> x) {
  float n = l2_norm(x);
  if (n > 0.0F) scale(x, 1.0F / n);
}

float cosine(std::span<const float> a, std::span<const float> b) {
  float na = l2_norm(a);
  float nb = l2_norm(b);
  if (na == 0.0F || nb == 0.0F) return 0.0F;
  return dot(a, b) / (na * nb);
}

float euclidean_distance(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float s = 0.0F;
  for (std::size_t i = 0; i < a.size(); ++i) {
    float d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

std::vector<float> mean_of_rows(
    const std::vector<std::span<const float>>& rows) {
  std::vector<float> out;
  if (rows.empty()) return out;
  out.assign(rows.front().size(), 0.0F);
  for (const auto& row : rows) {
    assert(row.size() == out.size());
    axpy(1.0F, row, out);
  }
  float inv = 1.0F / static_cast<float>(rows.size());
  scale(out, inv);
  return out;
}

float sigmoid(float x) { return 1.0F / (1.0F + std::exp(-x)); }

SigmoidTable::SigmoidTable() : half_(kTableSize / 2 + 1) {
  // half_[j] = sigmoid(j / (half - 1) * kMaxExp), so half_[0] is exactly
  // 0.5 and half_.back() is exactly sigmoid(kMaxExp): the endpoints of the
  // clamped range are knots, unlike the historical full-range table whose
  // last knot fell short of +kMaxExp.
  std::size_t knots = half_.size();
  for (std::size_t j = 0; j < knots; ++j) {
    float x = static_cast<float>(j) / static_cast<float>(knots - 1) * kMaxExp;
    half_[j] = sigmoid(x);
  }
}

float SigmoidTable::operator()(float x) const {
  float ax = x < 0.0F ? -x : x;
  std::size_t j;
  if (ax >= kMaxExp) {
    j = half_.size() - 1;
  } else {
    j = static_cast<std::size_t>(
        ax / kMaxExp * static_cast<float>(half_.size() - 1) + 0.5F);
    if (j >= half_.size()) j = half_.size() - 1;
  }
  float p = half_[j];
  return x < 0.0F ? 1.0F - p : p;
}

const SigmoidTable& shared_sigmoid_table() {
  static const SigmoidTable table;
  return table;
}

}  // namespace netobs::util
