// Small helpers shared by the benchmark binaries when rendering the
// paper's tables and figure data as text.
#pragma once

#include <string>
#include <vector>

namespace netobs::eval {

/// Converts per-day topic counts to per-day percentage shares (rows summing
/// to 100 where a day has any counts).
std::vector<std::vector<double>> to_percentage_shares(
    const std::vector<std::vector<double>>& counts);

/// Mean share per topic across days, descending; returns (topic, share%).
std::vector<std::pair<std::size_t, double>> mean_shares_descending(
    const std::vector<std::vector<double>>& shares);

/// Formats a CTR as a percentage string, e.g. 0.00217 -> "0.217%".
std::string format_ctr(double ctr);

}  // namespace netobs::eval
