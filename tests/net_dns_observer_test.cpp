#include <gtest/gtest.h>

#include "net/dns.hpp"
#include "net/observer.hpp"
#include "net/tls.hpp"

namespace netobs::net {
namespace {

Packet tls_packet(std::uint32_t src_ip, std::uint64_t mac,
                  const std::string& host, util::Timestamp ts = 0,
                  std::uint16_t src_port = 40000) {
  Packet p;
  p.timestamp = ts;
  p.tuple = {src_ip, 0x01010101, src_port, 443, Transport::kTcp};
  p.src_mac = mac;
  p.subscriber_id = mac;  // reuse as IMSI in tests
  ClientHelloSpec spec;
  spec.sni = host;
  p.payload = build_client_hello_record(spec);
  return p;
}

TEST(Dns, QueryRoundTrip) {
  DnsMessage msg;
  msg.id = 0xBEEF;
  msg.questions.push_back({"mail.google.com", DnsType::kA, 1});
  msg.questions.push_back({"espn.com", DnsType::kAaaa, 1});
  auto wire = build_dns_query(msg);
  auto parsed = parse_dns_message(wire);
  EXPECT_EQ(parsed.id, 0xBEEF);
  EXPECT_FALSE(parsed.is_response);
  EXPECT_TRUE(parsed.recursion_desired);
  ASSERT_EQ(parsed.questions.size(), 2U);
  EXPECT_EQ(parsed.questions[0].qname, "mail.google.com");
  EXPECT_EQ(parsed.questions[0].qtype, DnsType::kA);
  EXPECT_EQ(parsed.questions[1].qname, "espn.com");
  EXPECT_EQ(parsed.questions[1].qtype, DnsType::kAaaa);
}

TEST(Dns, QnameIsLowercased) {
  DnsMessage msg;
  msg.questions.push_back({"WWW.Example.COM", DnsType::kA, 1});
  auto parsed = parse_dns_message(build_dns_query(msg));
  EXPECT_EQ(parsed.questions[0].qname, "www.example.com");
}

TEST(Dns, EncodeNameWireFormat) {
  auto wire = encode_dns_name("ab.c.de");
  EXPECT_EQ(wire, (std::vector<std::uint8_t>{2, 'a', 'b', 1, 'c', 2, 'd', 'e',
                                             0}));
  EXPECT_THROW(encode_dns_name("bad..name"), std::invalid_argument);
}

TEST(Dns, ParsesCompressionPointers) {
  // Hand-built message: header, then QNAME "www.example.com" where
  // "example.com" is written once and referenced by a pointer.
  ByteWriter w;
  w.put_u16(1);   // id
  w.put_u16(0);   // flags
  w.put_u16(2);   // 2 questions
  w.put_u16(0);
  w.put_u16(0);
  w.put_u16(0);
  // Q1: example.com at offset 12.
  w.put_bytes(encode_dns_name("example.com"));
  w.put_u16(1);
  w.put_u16(1);
  // Q2: www + pointer to offset 12.
  w.put_u8(3);
  w.put_bytes(std::string_view("www"));
  w.put_u8(0xC0);
  w.put_u8(12);
  w.put_u16(1);
  w.put_u16(1);
  auto parsed = parse_dns_message(w.data());
  ASSERT_EQ(parsed.questions.size(), 2U);
  EXPECT_EQ(parsed.questions[0].qname, "example.com");
  EXPECT_EQ(parsed.questions[1].qname, "www.example.com");
}

TEST(Dns, RejectsPointerLoops) {
  ByteWriter w;
  w.put_u16(1);
  w.put_u16(0);
  w.put_u16(1);
  w.put_u16(0);
  w.put_u16(0);
  w.put_u16(0);
  // A pointer at offset 12 pointing to itself would be a forward/self
  // reference; decoder must reject rather than loop.
  w.put_u8(0xC0);
  w.put_u8(12);
  w.put_u16(1);
  w.put_u16(1);
  EXPECT_THROW(parse_dns_message(w.data()), ParseError);
}

TEST(Dns, RejectsTruncatedMessages) {
  DnsMessage msg;
  msg.questions.push_back({"example.com", DnsType::kA, 1});
  auto wire = build_dns_query(msg);
  for (std::size_t cut : {2UL, 11UL, wire.size() - 1}) {
    std::vector<std::uint8_t> prefix(wire.begin(),
                                     wire.begin() + static_cast<long>(cut));
    EXPECT_THROW(parse_dns_message(prefix), ParseError) << "cut=" << cut;
  }
}

TEST(UserDemux, WifiSeparatesByMac) {
  UserDemux demux(Vantage::kWifiProvider);
  Packet a = tls_packet(0x0A000001, 111, "x.com");
  Packet b = tls_packet(0x0A000001, 222, "y.com");  // same NAT IP
  EXPECT_NE(demux.user_of(a), demux.user_of(b));
  EXPECT_EQ(demux.user_of(a), demux.user_of(a));
  EXPECT_EQ(demux.distinct_users(), 2U);
}

TEST(UserDemux, NatCollapsesUsersBehindOneIp) {
  UserDemux demux(Vantage::kLandlineIsp);
  Packet a = tls_packet(0x0A000001, 111, "x.com");
  Packet b = tls_packet(0x0A000001, 222, "y.com");
  Packet c = tls_packet(0x0A000002, 333, "z.com");
  EXPECT_EQ(demux.user_of(a), demux.user_of(b));
  EXPECT_NE(demux.user_of(a), demux.user_of(c));
}

TEST(SniObserver, EmitsOneEventPerFlow) {
  SniObserver obs(Vantage::kWifiProvider);
  Packet p = tls_packet(0x0A000001, 7, "booking.com", 100);
  auto e = obs.observe(p);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->hostname, "booking.com");
  EXPECT_EQ(e->timestamp, 100);
  // Later data on the same flow must not re-emit.
  Packet follow = p;
  follow.payload = {0x17, 0x03, 0x03, 0x00, 0x01, 0x00};
  EXPECT_FALSE(obs.observe(follow).has_value());
  EXPECT_EQ(obs.stats().events, 1U);
}

TEST(SniObserver, ReassemblesSplitClientHello) {
  SniObserver obs(Vantage::kWifiProvider);
  Packet p = tls_packet(0x0A000001, 7, "skyscanner.es", 5);
  auto full = p.payload;
  // Split into three TCP segments.
  std::size_t third = full.size() / 3;
  for (std::size_t seg = 0; seg < 3; ++seg) {
    Packet part = p;
    std::size_t begin = seg * third;
    std::size_t end = seg == 2 ? full.size() : (seg + 1) * third;
    part.payload.assign(full.begin() + static_cast<long>(begin),
                        full.begin() + static_cast<long>(end));
    auto e = obs.observe(part);
    if (seg < 2) {
      EXPECT_FALSE(e.has_value()) << "segment " << seg;
    } else {
      ASSERT_TRUE(e.has_value());
      EXPECT_EQ(e->hostname, "skyscanner.es");
    }
  }
}

TEST(SniObserver, IgnoresNonTlsAndUdp) {
  SniObserver obs(Vantage::kWifiProvider);
  Packet http = tls_packet(0x0A000001, 7, "x.com");
  std::string get = "GET / HTTP/1.1\r\n";
  http.payload.assign(get.begin(), get.end());
  EXPECT_FALSE(obs.observe(http).has_value());
  EXPECT_EQ(obs.stats().not_tls, 1U);

  Packet udp = tls_packet(0x0A000001, 7, "y.com");
  udp.tuple.proto = Transport::kUdp;
  EXPECT_FALSE(obs.observe(udp).has_value());
}

TEST(SniObserver, DistinctFlowsFromSameUser) {
  SniObserver obs(Vantage::kWifiProvider);
  auto e1 = obs.observe(tls_packet(0x0A000001, 7, "a.com", 0, 40001));
  auto e2 = obs.observe(tls_packet(0x0A000001, 7, "b.org", 1, 40002));
  ASSERT_TRUE(e1 && e2);
  EXPECT_EQ(e1->user_id, e2->user_id);
  EXPECT_EQ(obs.stats().flows, 2U);
}

TEST(SniObserver, EvictsWhenPendingFlowCapReached) {
  SniObserverOptions opts;
  opts.max_pending_flows = 4;
  SniObserver obs(Vantage::kWifiProvider, opts);
  // Feed 10 flows with only 1 byte each (all stay pending).
  for (std::uint16_t i = 0; i < 10; ++i) {
    Packet p = tls_packet(0x0A000001, 7, "pending.com", 0,
                          static_cast<std::uint16_t>(50000 + i));
    p.payload = {0x16};
    obs.observe(p);
  }
  EXPECT_LE(obs.pending_flows(), 4U);
  EXPECT_GE(obs.stats().evicted, 6U);
}

TEST(SniObserver, DropsFlowsExceedingBufferCap) {
  SniObserverOptions opts;
  opts.max_buffered_bytes = 64;
  SniObserver obs(Vantage::kWifiProvider, opts);
  Packet p = tls_packet(0x0A000001, 7, "x.com", 0, 50001);
  // Claims a huge record so it never completes.
  p.payload = {0x16, 0x03, 0x01, 0x3F, 0xFF};
  EXPECT_FALSE(obs.observe(p).has_value());
  Packet more = p;
  more.payload.assign(100, 0x00);
  EXPECT_FALSE(obs.observe(more).has_value());
  EXPECT_EQ(obs.pending_flows(), 0U);
}

TEST(DnsObserver, EmitsEventPerQuestion) {
  DnsObserver obs(Vantage::kMobileOperator);
  DnsMessage msg;
  msg.questions.push_back({"twitter.com", DnsType::kA, 1});
  Packet p;
  p.timestamp = 9;
  p.tuple = {0x0A000001, 0x08080808, 5353, 53, Transport::kUdp};
  p.subscriber_id = 42;
  p.payload = build_dns_query(msg);
  auto events = obs.observe(p);
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].hostname, "twitter.com");
  EXPECT_EQ(events[0].timestamp, 9);
}

TEST(DnsObserver, IgnoresResponsesAndOtherPorts) {
  DnsObserver obs(Vantage::kMobileOperator);
  DnsMessage msg;
  msg.is_response = true;
  msg.questions.push_back({"twitter.com", DnsType::kA, 1});
  Packet p;
  p.tuple = {0x0A000001, 0x08080808, 5353, 53, Transport::kUdp};
  p.payload = build_dns_query(msg);
  EXPECT_TRUE(obs.observe(p).empty());

  p.tuple.dst_port = 443;
  msg.is_response = false;
  p.payload = build_dns_query(msg);
  EXPECT_TRUE(obs.observe(p).empty());
}

TEST(Ipv4ToString, Formats) {
  EXPECT_EQ(ipv4_to_string(0x0A000001), "10.0.0.1");
  EXPECT_EQ(ipv4_to_string(0xC0A80164), "192.168.1.100");
}

}  // namespace
}  // namespace netobs::net
