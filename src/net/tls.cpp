#include "net/tls.hpp"

#include "util/string_util.hpp"

namespace netobs::net {

namespace {

constexpr std::uint8_t kSniTypeHostName = 0;

void append_sni_extension(ByteWriter& w, const std::string& host) {
  w.put_u16(ExtensionType::kServerName);
  auto ext_len = w.begin_length(2);
  auto list_len = w.begin_length(2);
  w.put_u8(kSniTypeHostName);
  auto name_len = w.begin_length(2);
  w.put_bytes(host);
  w.patch_length(name_len);
  w.patch_length(list_len);
  w.patch_length(ext_len);
}

void append_alpn_extension(ByteWriter& w,
                           const std::vector<std::string>& protocols) {
  w.put_u16(ExtensionType::kAlpn);
  auto ext_len = w.begin_length(2);
  auto list_len = w.begin_length(2);
  for (const auto& p : protocols) {
    auto name_len = w.begin_length(1);
    w.put_bytes(p);
    w.patch_length(name_len);
  }
  w.patch_length(list_len);
  w.patch_length(ext_len);
}

void append_supported_versions(ByteWriter& w) {
  w.put_u16(ExtensionType::kSupportedVersions);
  auto ext_len = w.begin_length(2);
  auto list_len = w.begin_length(1);
  w.put_u16(0x0304);  // TLS 1.3
  w.put_u16(0x0303);  // TLS 1.2
  w.patch_length(list_len);
  w.patch_length(ext_len);
}

void parse_sni_body(std::span<const std::uint8_t> body, ClientHello& out) {
  ByteReader r(body);
  std::uint16_t list_len = r.get_u16();
  ByteReader list = r.sub_reader(list_len);
  while (!list.empty()) {
    std::uint8_t name_type = list.get_u8();
    std::uint16_t name_len = list.get_u16();
    std::string name = list.get_string(name_len);
    if (name_type == kSniTypeHostName && !out.sni) {
      out.sni = util::to_lower(name);
    }
  }
}

void parse_alpn_body(std::span<const std::uint8_t> body, ClientHello& out) {
  ByteReader r(body);
  std::uint16_t list_len = r.get_u16();
  ByteReader list = r.sub_reader(list_len);
  while (!list.empty()) {
    std::uint8_t len = list.get_u8();
    out.alpn.push_back(list.get_string(len));
  }
}

ClientHello parse_client_hello_body(ByteReader& hs) {
  ClientHello out;
  out.legacy_version = hs.get_u16();
  auto rnd = hs.get_bytes(32);
  std::copy(rnd.begin(), rnd.end(), out.random.begin());

  std::uint8_t sid_len = hs.get_u8();
  if (sid_len > 32) throw ParseError("ClientHello: session_id too long");
  auto sid = hs.get_bytes(sid_len);
  out.session_id.assign(sid.begin(), sid.end());

  std::uint16_t cs_len = hs.get_u16();
  if (cs_len % 2 != 0) throw ParseError("ClientHello: odd cipher_suites len");
  ByteReader cs = hs.sub_reader(cs_len);
  while (!cs.empty()) out.cipher_suites.push_back(cs.get_u16());
  if (out.cipher_suites.empty()) {
    throw ParseError("ClientHello: empty cipher_suites");
  }

  std::uint8_t comp_len = hs.get_u8();
  auto comp = hs.get_bytes(comp_len);
  out.compression_methods.assign(comp.begin(), comp.end());
  if (out.compression_methods.empty()) {
    throw ParseError("ClientHello: empty compression_methods");
  }

  if (hs.empty()) return out;  // extensions are optional pre-1.3

  std::uint16_t ext_total = hs.get_u16();
  ByteReader exts = hs.sub_reader(ext_total);
  while (!exts.empty()) {
    Extension e;
    e.type = exts.get_u16();
    std::uint16_t len = exts.get_u16();
    auto body = exts.get_bytes(len);
    e.body.assign(body.begin(), body.end());
    if (e.type == ExtensionType::kServerName) {
      parse_sni_body(e.body, out);
    } else if (e.type == ExtensionType::kAlpn) {
      parse_alpn_body(e.body, out);
    }
    out.extensions.push_back(std::move(e));
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> build_client_hello_handshake(
    const ClientHelloSpec& spec) {
  if (!spec.sni.empty() && !util::is_valid_hostname(spec.sni)) {
    throw std::invalid_argument("build_client_hello_handshake: invalid SNI '" +
                                spec.sni + "'");
  }
  ByteWriter w;
  // Handshake header.
  w.put_u8(static_cast<std::uint8_t>(HandshakeType::kClientHello));
  auto hs_len = w.begin_length(3);

  // ClientHello body.
  w.put_u16(0x0303);
  w.put_bytes(std::span<const std::uint8_t>(spec.random));
  auto sid_len = w.begin_length(1);
  w.put_bytes(std::span<const std::uint8_t>(spec.session_id));
  w.patch_length(sid_len);
  auto cs_len = w.begin_length(2);
  for (std::uint16_t suite : spec.cipher_suites) w.put_u16(suite);
  w.patch_length(cs_len);
  w.put_u8(1);  // compression_methods length
  w.put_u8(0);  // null compression

  auto ext_len = w.begin_length(2);
  if (!spec.sni.empty()) append_sni_extension(w, spec.sni);
  if (!spec.alpn.empty()) append_alpn_extension(w, spec.alpn);
  if (spec.offer_tls13) append_supported_versions(w);
  w.patch_length(ext_len);
  w.patch_length(hs_len);
  return w.take();
}

std::vector<std::uint8_t> build_client_hello_record(
    const ClientHelloSpec& spec) {
  auto handshake = build_client_hello_handshake(spec);
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(ContentType::kHandshake));
  w.put_u16(0x0301);  // record legacy_version, as sent by real clients
  auto record_len = w.begin_length(2);
  w.put_bytes(handshake);
  w.patch_length(record_len);
  return w.take();
}

ClientHello parse_client_hello_handshake(
    std::span<const std::uint8_t> handshake) {
  ByteReader r(handshake);
  auto msg_type = r.get_u8();
  if (msg_type != static_cast<std::uint8_t>(HandshakeType::kClientHello)) {
    throw ParseError("not a ClientHello (handshake type " +
                     std::to_string(msg_type) + ")");
  }
  std::uint32_t hs_len = r.get_u24();
  ByteReader hs = r.sub_reader(hs_len);
  return parse_client_hello_body(hs);
}

ClientHello parse_client_hello_record(std::span<const std::uint8_t> record) {
  ByteReader r(record);
  auto content_type = r.get_u8();
  if (content_type != static_cast<std::uint8_t>(ContentType::kHandshake)) {
    throw ParseError("not a handshake record (type " +
                     std::to_string(content_type) + ")");
  }
  std::uint16_t version = r.get_u16();
  if ((version >> 8) != 0x03) throw ParseError("bad record version");
  std::uint16_t record_len = r.get_u16();
  ByteReader body = r.sub_reader(record_len);

  auto msg_type = body.get_u8();
  if (msg_type != static_cast<std::uint8_t>(HandshakeType::kClientHello)) {
    throw ParseError("not a ClientHello (handshake type " +
                     std::to_string(msg_type) + ")");
  }
  std::uint32_t hs_len = body.get_u24();
  ByteReader hs = body.sub_reader(hs_len);
  return parse_client_hello_body(hs);
}

std::size_t first_record_span(std::span<const std::uint8_t> stream_prefix) {
  if (stream_prefix.size() < 5) return 0;
  std::size_t body = (static_cast<std::size_t>(stream_prefix[3]) << 8) |
                     stream_prefix[4];
  return 5 + body;
}

SniResult extract_sni(std::span<const std::uint8_t> stream_prefix) {
  SniResult result;
  if (stream_prefix.empty()) {
    result.status = SniStatus::kNeedMoreData;
    return result;
  }
  if (stream_prefix[0] !=
      static_cast<std::uint8_t>(ContentType::kHandshake)) {
    result.status = SniStatus::kNotTls;
    return result;
  }
  if (stream_prefix.size() >= 2 && stream_prefix[1] != 0x03) {
    result.status = SniStatus::kNotTls;
    return result;
  }
  std::size_t span = first_record_span(stream_prefix);
  if (span == 0 || stream_prefix.size() < span) {
    result.status = SniStatus::kNeedMoreData;
    return result;
  }
  try {
    ClientHello hello =
        parse_client_hello_record(stream_prefix.subspan(0, span));
    if (hello.sni) {
      result.status = SniStatus::kFound;
      result.sni = *hello.sni;
    } else {
      result.status = SniStatus::kNoSni;
    }
  } catch (const ParseError&) {
    result.status = SniStatus::kNotTls;
  }
  return result;
}

}  // namespace netobs::net
