// Ablation — ontology coverage: the motivation for embeddings (Section 4).
//
// The paper's core argument: ontologies label only ~10% of hostnames, so a
// profiler needs the embedding to propagate labels to the unlabeled 90%.
// This bench sweeps the labeled fraction and compares
//   (a) the full embedding+kNN profiler, against
//   (b) an ontology-only profiler (neighbourhood shrunk to 1, so in
//       practice only labeled session hosts contribute),
// reporting profile quality and the fraction of sessions that are
// unprofileable at each coverage level.
#include <iostream>
#include <memory>

#include "bench/quality_probe.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {1000, 3, 2021, ""});
  util::print_banner(std::cout,
                     "Ablation: ontology coverage vs embedding (Section 4)");

  util::Table table({"label coverage", "mode", "profiles", "empty %",
                     "top-3 match", "ad affinity"});
  for (double coverage : {0.02, 0.05, 0.106, 0.25, 0.5}) {
    synth::WorldParams wp;
    wp.label_coverage = coverage;
    auto fx = std::make_unique<bench::QualityFixture>(cfg, wp);
    for (bool embedding_on : {true, false}) {
      auto sp = bench::scaled_service_params();
      sp.profiler.use_embedding_neighbors = embedding_on;
      auto q = bench::measure_quality(*fx, sp);
      table.add_row(
          {util::format("%.1f%%%s", coverage * 100,
                        coverage == 0.106 ? " (paper)" : ""),
           embedding_on ? "embedding+kNN" : "ontology-only",
           std::to_string(q.profiles),
           util::format("%.1f", q.empty_rate * 100),
           util::format("%.3f", q.top3_match),
           util::format("%.3f", q.selected_affinity)});
    }
  }
  table.print(std::cout);

  std::cout << "\nshape checks: at low coverage the embedding recovers\n"
               "profiles the ontology alone cannot; quality grows with\n"
               "coverage — exactly the paper's motivation for\n"
               "representation learning over raw ontology lookups.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
