#include <gtest/gtest.h>

#include "content/crawler.hpp"

namespace netobs::content {
namespace {

TEST(PageModel, GeneratesDocumentsOfExpectedShape) {
  PageModel model(5);
  util::Pcg32 rng(1);
  std::vector<float> mix(5, 0.0F);
  mix[2] = 1.0F;
  auto doc = model.sample_page(mix, rng);
  EXPECT_GT(doc.size(), 30U);
  for (TokenId t : doc) EXPECT_LT(t, model.vocab_size());
}

TEST(PageModel, TopicalTokensReflectTheMixture) {
  PageModel model(5);
  util::Pcg32 rng(2);
  std::vector<float> mix(5, 0.0F);
  mix[3] = 1.0F;
  std::size_t topical = 0;
  std::size_t on_topic = 0;
  for (int rep = 0; rep < 30; ++rep) {
    for (TokenId t : model.sample_page(mix, rng)) {
      if (!model.is_topical(t)) continue;
      ++topical;
      if (model.topic_of_token(t) == 3) ++on_topic;
    }
  }
  ASSERT_GT(topical, 100U);
  EXPECT_EQ(on_topic, topical);  // single-topic host: all topical words on it
}

TEST(PageModel, EmptyMixtureYieldsBoilerplateOnly) {
  PageModel model(4);
  util::Pcg32 rng(3);
  auto doc = model.sample_page({}, rng);
  for (TokenId t : doc) EXPECT_FALSE(model.is_topical(t));
}

TEST(PageModel, RejectsDegenerateParams) {
  EXPECT_THROW(PageModel(0), std::invalid_argument);
  PageModelParams bad;
  bad.words_per_topic = 0;
  EXPECT_THROW(PageModel(3, bad), std::invalid_argument);
}

TEST(NaiveBayes, LearnsSeparableClasses) {
  PageModel model(3);
  util::Pcg32 rng(4);
  NaiveBayesClassifier clf(model.vocab_size(), 3);
  for (std::size_t c = 0; c < 3; ++c) {
    std::vector<float> mix(3, 0.0F);
    mix[c] = 1.0F;
    for (int i = 0; i < 25; ++i) {
      clf.add_document(model.sample_page(mix, rng), c);
    }
  }
  EXPECT_EQ(clf.documents(), 75U);
  std::size_t correct = 0;
  for (std::size_t c = 0; c < 3; ++c) {
    std::vector<float> mix(3, 0.0F);
    mix[c] = 1.0F;
    for (int i = 0; i < 20; ++i) {
      if (clf.predict_class(model.sample_page(mix, rng)) == c) ++correct;
    }
  }
  EXPECT_GE(correct, 55U);  // > 90% on cleanly separable classes
}

TEST(NaiveBayes, PosteriorIsADistribution) {
  NaiveBayesClassifier clf(10, 4);
  clf.add_document({1, 2, 3}, 0);
  clf.add_document({7, 8, 9}, 1);
  auto p = clf.predict({1, 2});
  ASSERT_EQ(p.size(), 4U);
  double total = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(clf.predict_class({1, 2}), 0U);
  EXPECT_EQ(clf.predict_class({8, 9}), 1U);
}

TEST(NaiveBayes, RejectsBadInput) {
  EXPECT_THROW(NaiveBayesClassifier(0, 2), std::invalid_argument);
  EXPECT_THROW(NaiveBayesClassifier(10, 0), std::invalid_argument);
  EXPECT_THROW(NaiveBayesClassifier(10, 2, 0.0), std::invalid_argument);
  NaiveBayesClassifier clf(10, 2);
  EXPECT_THROW(clf.add_document({11}, 0), std::out_of_range);
  EXPECT_THROW(clf.add_document({1}, 5), std::out_of_range);
}

class CrawlerTest : public ::testing::Test {
 protected:
  CrawlerTest() {
    util::Pcg32 rng(11);
    ontology::AdwordsTreeParams tp;
    tp.top_level = 8;
    tp.second_level_target = 40;
    tp.total_categories = 120;
    tree_ = std::make_unique<ontology::CategoryTree>(
        make_adwords_like_tree(rng, tp));
    space_ = std::make_unique<ontology::CategorySpace>(*tree_);
    synth::WorldParams wp;
    wp.universal_hosts = 8;
    wp.first_party_hosts = 250;
    wp.shared_cdn_hosts = 6;
    wp.tracker_hosts = 15;
    universe_ =
        std::make_unique<synth::HostnameUniverse>(*space_, wp);
  }

  std::unique_ptr<ontology::CategoryTree> tree_;
  std::unique_ptr<ontology::CategorySpace> space_;
  std::unique_ptr<synth::HostnameUniverse> universe_;
};

TEST_F(CrawlerTest, FetchFailsExactlyForUncrawlableHosts) {
  ContentCrawler crawler(*universe_);
  std::size_t failures = 0;
  for (std::size_t i = 0; i < universe_->size(); ++i) {
    auto page = crawler.fetch(i);
    if (universe_->host(i).crawlable) {
      EXPECT_TRUE(page.has_value());
    } else {
      EXPECT_FALSE(page.has_value());
      ++failures;
    }
  }
  EXPECT_NEAR(crawler.fetch_failure_rate(),
              static_cast<double>(failures) /
                  static_cast<double>(universe_->size()),
              1e-9);
}

TEST_F(CrawlerTest, FetchIsDeterministicPerHost) {
  ContentCrawler crawler(*universe_);
  std::size_t site = universe_->sites_of_topic(0).empty()
                         ? universe_->universal()[0]
                         : universe_->sites_of_topic(0)[0];
  auto a = crawler.fetch(site);
  auto b = crawler.fetch(site);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);
}

TEST_F(CrawlerTest, ExpandLabelsGrowsCoverageAccurately) {
  ContentCrawler crawler(*universe_);
  auto seed = universe_->make_labeler();
  auto result = crawler.expand_labels(seed, *space_);

  EXPECT_GT(result.training_documents, 10U);
  EXPECT_GT(result.predicted, 50U);
  EXPECT_GT(result.labeler.labeled_count(), seed.labeled_count());
  // Content labeling can never reach the uncrawlable part of the universe.
  EXPECT_GT(result.unfetchable, universe_->size() / 3);
  // Predictions on cleanly generated pages should be mostly right.
  EXPECT_GT(result.prediction_accuracy, 0.7);
  // All emitted labels are valid category vectors.
  for (const auto& [host, label] : result.labeler.labels()) {
    EXPECT_TRUE(ontology::is_valid_category_vector(label));
  }
}

TEST_F(CrawlerTest, HighConfidenceThresholdRejectsMore) {
  ContentCrawler crawler(*universe_);
  auto seed = universe_->make_labeler();
  auto loose = crawler.expand_labels(seed, *space_, 0.1);
  auto strict = crawler.expand_labels(seed, *space_, 0.95);
  EXPECT_GE(loose.predicted, strict.predicted);
  EXPECT_LE(loose.rejected_low_confidence, strict.rejected_low_confidence);
}

}  // namespace
}  // namespace netobs::content
