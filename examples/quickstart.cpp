// Quickstart: the profiling algorithm of Section 4.1 in ~60 lines.
//
// 1. Train hostname embeddings (SKIPGRAM w/ negative sampling) on sequences
//    of hostnames, exactly what a network observer sees via TLS SNI.
// 2. Label a few hostnames through an "ontology" (here: by hand).
// 3. Profile a session that contains ONLY an unlabeled API hostname — the
//    embedding propagates the labels of its co-requested neighbours.
#include <iostream>

#include "embedding/knn.hpp"
#include "embedding/sgns.hpp"
#include "ontology/host_labeler.hpp"
#include "profile/profiler.hpp"

int main() {
  using namespace netobs;

  // Hostname sequences as observed on the wire, one per user session.
  // api.bkng.azure.com is always co-requested with travel sites; the
  // ad-tracker appears everywhere (and would normally be blocklisted).
  std::vector<embedding::Sequence> base = {
      {"booking.com", "api.bkng.azure.com", "skyscanner.es", "ryanair.com"},
      {"hotels.com", "api.bkng.azure.com", "vueling.com", "booking.com"},
      {"espn.com", "marca.com", "mundodeportivo.com", "rojadirecta.me"},
      {"as.com", "espn.com", "cdn.sportsvc.net", "marca.com"},
  };
  std::vector<embedding::Sequence> corpus;
  for (int i = 0; i < 120; ++i) corpus.insert(corpus.end(), base.begin(), base.end());

  embedding::SgnsParams params;
  params.dim = 32;
  params.epochs = 10;
  embedding::VocabularyParams vocab_params;
  vocab_params.min_count = 1;
  vocab_params.subsample_threshold = 0.0;
  embedding::SgnsTrainer trainer(params, vocab_params);
  auto model = trainer.fit(corpus);
  std::cout << "trained embeddings for " << model.size() << " hostnames (d="
            << model.dim() << ")\n";

  // Ontology: only 4 of the 10 hostnames are labeled (cat 0 = Travel,
  // cat 1 = Sports) — the coverage problem of Section 4.
  ontology::HostLabeler labeler(2);
  labeler.set_label("booking.com", {1.0F, 0.0F});
  labeler.set_label("skyscanner.es", {0.9F, 0.0F});
  labeler.set_label("espn.com", {0.0F, 1.0F});
  labeler.set_label("marca.com", {0.0F, 0.9F});

  embedding::CosineKnnIndex index(model);
  profile::ProfilerParams pp;
  pp.knn = 5;
  profile::SessionProfiler profiler(model, index, labeler, pp);

  // The observer catches a session with a single, unlabeled API request.
  auto profile = profiler.profile({"api.bkng.azure.com"});
  std::cout << "session = [api.bkng.azure.com]  (unlabeled API endpoint)\n"
            << "  Travel importance: " << profile.categories[0] << "\n"
            << "  Sports importance: " << profile.categories[1] << "\n"
            << "  -> the eavesdropper tags the user as "
            << (profile.categories[0] > profile.categories[1] ? "TRAVEL"
                                                              : "SPORTS")
            << "-interested without ever resolving the API's content.\n";
  return 0;
}
