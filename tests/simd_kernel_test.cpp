// SIMD-vs-scalar parity for every dispatched kernel, across random lengths
// (including non-multiples-of-8) and unaligned tails, plus the bit-identity
// guarantee between the scalar and AVX2+FMA tiers that the kNN oracle
// relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/vec_math.hpp"

namespace netobs::util {
namespace {

/// Restores the dispatch tier even if a test fails mid-way.
struct TierGuard {
  simd::Tier saved = simd::active_tier();
  ~TierGuard() { simd::force_tier(saved); }
};

std::vector<simd::Tier> available_tiers() {
  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  if (static_cast<int>(simd::best_supported_tier()) >=
      static_cast<int>(simd::Tier::kSse2)) {
    tiers.push_back(simd::Tier::kSse2);
  }
  if (simd::best_supported_tier() == simd::Tier::kAvx2) {
    tiers.push_back(simd::Tier::kAvx2);
  }
  return tiers;
}

std::vector<float> random_vec(Pcg32& rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

// Plain double-precision reference, deliberately *not* the lane-emulating
// scalar tier.
double ref_dot(const float* a, const float* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return s;
}

// Lengths that cover multiples of 8, stragglers around the lane width, and
// short vectors that never reach the main loop.
const std::size_t kLengths[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                31, 63, 64, 100, 127, 128, 300};

TEST(SimdKernels, DotMatchesReferenceOnEveryTier) {
  TierGuard guard;
  Pcg32 rng(41);
  for (simd::Tier tier : available_tiers()) {
    ASSERT_EQ(simd::force_tier(tier), tier);
    for (std::size_t n : kLengths) {
      for (std::size_t offset : {0U, 1U, 3U}) {  // unaligned tails
        auto a = random_vec(rng, n + offset);
        auto b = random_vec(rng, n + offset);
        float got = simd::dot(a.data() + offset, b.data() + offset, n);
        double want = ref_dot(a.data() + offset, b.data() + offset, n);
        EXPECT_NEAR(got, want, 1e-4 * static_cast<double>(n) + 1e-5)
            << simd::tier_name(tier) << " n=" << n << " off=" << offset;
      }
    }
  }
}

TEST(SimdKernels, AxpyScaleFusedMatchReferenceOnEveryTier) {
  TierGuard guard;
  Pcg32 rng(43);
  for (simd::Tier tier : available_tiers()) {
    ASSERT_EQ(simd::force_tier(tier), tier);
    for (std::size_t n : kLengths) {
      auto x = random_vec(rng, n);
      auto y = random_vec(rng, n);
      auto grad = random_vec(rng, n);
      float alpha = 0.37F;

      auto y_axpy = y;
      simd::axpy(alpha, x.data(), y_axpy.data(), n);
      auto y_scale = y;
      simd::scale(y_scale.data(), alpha, n);
      auto out_fused = y;
      auto grad_fused = grad;
      simd::fused_grad_update(alpha, x.data(), out_fused.data(),
                              grad_fused.data(), n);

      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(y_axpy[i], y[i] + alpha * x[i], 1e-5)
            << simd::tier_name(tier) << " axpy i=" << i;
        EXPECT_FLOAT_EQ(y_scale[i], y[i] * alpha)
            << simd::tier_name(tier) << " scale i=" << i;
        // fused = axpy(g, out_before, grad) then axpy(g, in, out).
        EXPECT_NEAR(grad_fused[i], grad[i] + alpha * y[i], 1e-5)
            << simd::tier_name(tier) << " fused/grad i=" << i;
        EXPECT_NEAR(out_fused[i], y[i] + alpha * x[i], 1e-5)
            << simd::tier_name(tier) << " fused/out i=" << i;
      }
    }
  }
}

TEST(SimdKernels, DotBlockIsBitIdenticalToSpanDot) {
  TierGuard guard;
  Pcg32 rng(47);
  for (simd::Tier tier : available_tiers()) {
    ASSERT_EQ(simd::force_tier(tier), tier);
    for (std::size_t dim : {1UL, 7UL, 8UL, 100UL, 129UL}) {
      std::size_t stride = simd::padded_dim(dim);
      constexpr std::size_t kRows = 11;  // exercises the 4-row chunk tail
      std::vector<float, simd::AlignedAllocator<float>> mat(kRows * stride,
                                                            0.0F);
      std::vector<float, simd::AlignedAllocator<float>> q(stride, 0.0F);
      for (std::size_t r = 0; r < kRows; ++r) {
        for (std::size_t j = 0; j < dim; ++j) {
          mat[r * stride + j] = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
      }
      for (std::size_t j = 0; j < dim; ++j) {
        q[j] = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
      float out[kRows];
      simd::dot_block(q.data(), mat.data(), stride, kRows, out);
      for (std::size_t r = 0; r < kRows; ++r) {
        // The padded sweep must reproduce the span kernel exactly — this
        // is what makes blocked kNN scores identical to per-row scores.
        EXPECT_EQ(out[r], simd::dot(q.data(), mat.data() + r * stride, dim))
            << simd::tier_name(tier) << " dim=" << dim << " row=" << r;
      }
    }
  }
}

TEST(SimdKernels, ScalarTierIsBitIdenticalToAvx2) {
  if (simd::best_supported_tier() != simd::Tier::kAvx2) {
    GTEST_SKIP() << "no AVX2+FMA on this host";
  }
  TierGuard guard;
  Pcg32 rng(53);
  for (std::size_t n : kLengths) {
    auto a = random_vec(rng, n);
    auto b = random_vec(rng, n);
    simd::force_tier(simd::Tier::kScalar);
    float scalar = simd::dot(a.data(), b.data(), n);
    simd::force_tier(simd::Tier::kAvx2);
    float avx2 = simd::dot(a.data(), b.data(), n);
    // Same lane assignment, same fma rounding, same reduction tree.
    EXPECT_EQ(scalar, avx2) << "n=" << n;

    auto y1 = b;
    auto y2 = b;
    simd::force_tier(simd::Tier::kScalar);
    simd::axpy(0.77F, a.data(), y1.data(), n);
    simd::force_tier(simd::Tier::kAvx2);
    simd::axpy(0.77F, a.data(), y2.data(), n);
    EXPECT_EQ(y1, y2) << "axpy n=" << n;
  }
}

TEST(SimdKernels, MaskGeIsExactOnEveryTier) {
  // An IEEE compare has one right answer, so every tier must agree bit for
  // bit — including equal-to-threshold (kept, for the id tie-break) and
  // NaN scores (always dropped).
  TierGuard guard;
  Pcg32 rng(43);
  for (std::size_t n : kLengths) {
    if (n > 64) continue;  // contract: one 64-bit block at most
    auto x = random_vec(rng, n);
    x[rng.next_below(static_cast<std::uint32_t>(n))] = 0.25F;  // exact hit
    if (n > 2) x[1] = std::nanf("");
    for (float threshold : {-2.0F, 0.25F, 0.0F, 2.0F}) {
      std::uint64_t want = 0;
      for (std::size_t i = 0; i < n; ++i) {
        want |= static_cast<std::uint64_t>(x[i] >= threshold) << i;
      }
      for (simd::Tier tier : available_tiers()) {
        ASSERT_EQ(simd::force_tier(tier), tier);
        EXPECT_EQ(simd::mask_ge(x.data(), n, threshold), want)
            << simd::tier_name(tier) << " n=" << n << " t=" << threshold;
      }
    }
  }
}

TEST(SimdKernels, DotI8IsExactOnEveryTier) {
  // Integer arithmetic has one right answer: every tier must equal the
  // plain int32 reference exactly, for any length (the IVF candidate stage
  // depends on this, not on a tolerance).
  TierGuard guard;
  Pcg32 rng(59);
  for (std::size_t n : kLengths) {
    std::vector<std::int8_t> a(n), b(n);
    for (auto& v : a) {
      v = static_cast<std::int8_t>(
          static_cast<int>(rng.next_below(255)) - 127);
    }
    for (auto& v : b) {
      v = static_cast<std::int8_t>(
          static_cast<int>(rng.next_below(255)) - 127);
    }
    std::int32_t want = 0;
    for (std::size_t i = 0; i < n; ++i) {
      want += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
    }
    for (simd::Tier tier : available_tiers()) {
      ASSERT_EQ(simd::force_tier(tier), tier);
      EXPECT_EQ(simd::dot_i8(a.data(), b.data(), n), want)
          << simd::tier_name(tier) << " n=" << n;
    }
  }
  // Saturation-adjacent extremes: +/-127 codes across a full AVX2 block.
  std::vector<std::int8_t> lo(64, -127), hi(64, 127);
  for (simd::Tier tier : available_tiers()) {
    ASSERT_EQ(simd::force_tier(tier), tier);
    EXPECT_EQ(simd::dot_i8(lo.data(), hi.data(), 64), -127 * 127 * 64);
    EXPECT_EQ(simd::dot_i8(hi.data(), hi.data(), 64), 127 * 127 * 64);
  }
}

TEST(SimdKernels, DotI8BlockIsExactOnEveryTier) {
  // The batched IVF list sweep scores whole code blocks with dot_i8_block;
  // like dot_i8 it must equal the plain int32 reference exactly on every
  // tier, for any stride (including non-multiples of the 32-byte chunk,
  // which exercise the per-element column tails) and any row count
  // (including the <4 leftover rows after the 4-row main loop).
  TierGuard guard;
  Pcg32 rng(61);
  for (std::size_t stride : {1UL, 17UL, 32UL, 40UL, 64UL, 96UL, 100UL}) {
    for (std::size_t nrows : {1UL, 3UL, 4UL, 5UL, 7UL, 11UL, 64UL}) {
      std::vector<std::int8_t> base(nrows * stride);
      std::vector<std::int8_t> q(stride);
      for (auto& v : base) {
        v = static_cast<std::int8_t>(
            static_cast<int>(rng.next_below(255)) - 127);
      }
      for (auto& v : q) {
        v = static_cast<std::int8_t>(
            static_cast<int>(rng.next_below(255)) - 127);
      }
      std::vector<std::int32_t> want(nrows, 0);
      for (std::size_t r = 0; r < nrows; ++r) {
        for (std::size_t j = 0; j < stride; ++j) {
          want[r] += static_cast<std::int32_t>(q[j]) *
                     static_cast<std::int32_t>(base[r * stride + j]);
        }
      }
      for (simd::Tier tier : available_tiers()) {
        ASSERT_EQ(simd::force_tier(tier), tier);
        std::vector<std::int32_t> got(nrows, 0);
        simd::dot_i8_block(q.data(), base.data(), stride, nrows, got.data());
        EXPECT_EQ(got, want)
            << simd::tier_name(tier) << " stride=" << stride
            << " nrows=" << nrows;
      }
    }
  }
  // Extreme codes across a 4-row block: the int16 madd pairs reach
  // 2 * 127^2 = 32258 < INT16_MAX-safe int32 accumulation territory.
  constexpr std::size_t kStride = 64;
  std::vector<std::int8_t> ext(4 * kStride, 127);
  std::vector<std::int8_t> qe(kStride, -127);
  for (simd::Tier tier : available_tiers()) {
    ASSERT_EQ(simd::force_tier(tier), tier);
    std::int32_t out[4];
    simd::dot_i8_block(qe.data(), ext.data(), kStride, 4, out);
    for (std::int32_t v : out) EXPECT_EQ(v, -127 * 127 * 64);
  }
}

TEST(SimdKernels, ForceTierClampsToSupported) {
  TierGuard guard;
  simd::Tier got = simd::force_tier(simd::Tier::kAvx2);
  EXPECT_LE(static_cast<int>(got),
            static_cast<int>(simd::best_supported_tier()));
  EXPECT_EQ(simd::active_tier(), got);
  EXPECT_STREQ(simd::tier_name(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kSse2), "sse2");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kAvx2), "avx2");
}

TEST(SimdKernels, VecMathWrappersDispatch) {
  // The span-level API must agree with the raw kernels it forwards to.
  std::vector<float> a = {1.0F, 2.0F, 3.0F, 4.0F, 5.0F, 6.0F, 7.0F, 8.0F,
                          9.0F};
  std::vector<float> b = {9.0F, 8.0F, 7.0F, 6.0F, 5.0F, 4.0F, 3.0F, 2.0F,
                          1.0F};
  EXPECT_EQ(dot(a, b), simd::dot(a.data(), b.data(), a.size()));
  EXPECT_FLOAT_EQ(dot(a, b), 165.0F);
}

}  // namespace
}  // namespace netobs::util
