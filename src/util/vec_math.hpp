// Dense float vector kernels shared by the embedding trainer, the kNN index
// and the profiler. Everything operates on contiguous float spans; the hot
// loops dispatch to the runtime-selected SIMD tier in util/simd.hpp
// (AVX2+FMA / SSE2 / scalar), and the trainer's sigmoid goes through a
// lookup table exactly like the word2vec/GENSIM reference implementations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace netobs::util {

float dot(std::span<const float> a, std::span<const float> b);

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void scale(std::span<float> x, float alpha);

/// Fused SGNS inner update, one pass over the rows:
///   grad += g * out;  out += g * in.
/// `in` must not alias `out` or `grad`. Equivalent to axpy(g, out, grad)
/// followed by axpy(g, in, out), but touches each cache line once.
void fused_grad_update(float g, std::span<const float> in, std::span<float> out,
                       std::span<float> grad);

float l2_norm(std::span<const float> x);

/// Normalises x to unit length in place; leaves the zero vector untouched.
void normalize(std::span<float> x);

/// Cosine similarity; 0 if either vector is zero.
float cosine(std::span<const float> a, std::span<const float> b);

float euclidean_distance(std::span<const float> a, std::span<const float> b);

/// Element-wise mean of equal-length rows; returns empty when rows is empty.
std::vector<float> mean_of_rows(const std::vector<std::span<const float>>& rows);

/// Exact sigmoid 1 / (1 + e^-x).
float sigmoid(float x);

/// Precomputed sigmoid table over [-kMaxExp, kMaxExp], the word2vec trick:
/// callers clamp to the bounds (the gradient saturates there anyway).
///
/// Only the non-negative half is stored; negative inputs are answered via
/// the identity sigmoid(-x) = 1 - sigmoid(x), which makes the table exactly
/// symmetric (sig(-x) == 1 - sig(x) bitwise), exactly monotone, and exact
/// at x = 0 and at the clamped endpoints ±kMaxExp.
class SigmoidTable {
 public:
  static constexpr float kMaxExp = 6.0F;
  /// Knot count over the full [-kMaxExp, kMaxExp] range (the stored
  /// half-table has kTableSize / 2 + 1 entries).
  static constexpr std::size_t kTableSize = 1024;

  SigmoidTable();

  /// Approximate sigmoid; rounds to the nearest knot, exact at the knots,
  /// clamped outside [-kMaxExp, kMaxExp].
  float operator()(float x) const;

 private:
  std::vector<float> half_;  ///< sigmoid on [0, kMaxExp], half_[0] = 0.5
};

/// Process-wide shared table (construction is cheap but the trainer calls
/// this per sample).
const SigmoidTable& shared_sigmoid_table();

}  // namespace netobs::util
