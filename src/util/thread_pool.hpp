// Minimal fixed-size thread pool.
//
// The SKIPGRAM trainer shards the corpus across workers (Hogwild-style
// lock-free SGD) and the profiling service answers concurrent session
// queries; both only need "run these N jobs and wait".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace netobs::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; 0 is coerced to 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; the future resolves when it finishes (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> job);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all done.
  /// The first exception (if any) is rethrown in the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Chunked variant: runs fn(begin, end) over half-open ranges covering
  /// [0, n), at most ceil(n / grain) jobs of up to `grain` indices each
  /// (grain 0 is coerced to 1). One std::function dispatch per *chunk*
  /// instead of per index — use this for cheap per-index work like the kNN
  /// shard scan. Blocks until all chunks finish; the first exception (if
  /// any) is rethrown in the caller.
  void parallel_for_chunked(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace netobs::util
