// Tests for the sharded ingest pipeline (net/ingest.hpp) and its parts:
// the hostname intern pool, the open-addressed flow table, the observers'
// idle-eviction / DNS-dedupe satellites, and the end-to-end identity
// guarantees (1-shard output bit-identical to the single-threaded
// observers; identical user profiles under both ingest modes).
//
// The IngestConcurrency suite is part of the sanitizer_smoke ctest: it
// exercises the worker/consumer/interning hot paths under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/dns.hpp"
#include "net/flow_table.hpp"
#include "net/ingest.hpp"
#include "net/observer.hpp"
#include "net/tls.hpp"
#include "ontology/category_tree.hpp"
#include "profile/service.hpp"
#include "util/intern_pool.hpp"

namespace netobs::net {
namespace {

Packet tls_packet(std::uint32_t src_ip, std::uint64_t mac,
                  const std::string& host, util::Timestamp ts = 0,
                  std::uint16_t src_port = 40000,
                  std::uint32_t dst_ip = 0x01010101) {
  Packet p;
  p.timestamp = ts;
  p.tuple = {src_ip, dst_ip, src_port, 443, Transport::kTcp};
  p.src_mac = mac;
  p.subscriber_id = mac;
  ClientHelloSpec spec;
  spec.sni = host;
  p.payload = build_client_hello_record(spec);
  return p;
}

Packet dns_packet(std::uint32_t src_ip, std::uint64_t mac,
                  const std::string& qname, util::Timestamp ts,
                  std::uint16_t src_port = 5353) {
  Packet p;
  p.timestamp = ts;
  p.tuple = {src_ip, 0x08080808, src_port, 53, Transport::kUdp};
  p.src_mac = mac;
  p.subscriber_id = mac;
  DnsMessage msg;
  msg.questions.push_back({qname, DnsType::kA, 1});
  p.payload = build_dns_query(msg);
  return p;
}

// --- InternPool -----------------------------------------------------------

TEST(InternPool, DenseIdsAndLockFreeResolution) {
  util::InternPool pool;
  EXPECT_EQ(pool.intern("a.com"), 0U);
  EXPECT_EQ(pool.intern("b.com"), 1U);
  EXPECT_EQ(pool.intern("c.com"), 2U);
  EXPECT_EQ(pool.intern("b.com"), 1U);  // second sight: same id
  EXPECT_EQ(pool.size(), 3U);
  EXPECT_EQ(pool.hits(), 1U);
  EXPECT_EQ(pool.misses(), 3U);
  EXPECT_EQ(pool.name(0), "a.com");
  EXPECT_EQ(pool.name(2), "c.com");
  EXPECT_GT(pool.bytes(), 0U);
  ASSERT_TRUE(pool.find("a.com").has_value());
  EXPECT_EQ(*pool.find("a.com"), 0U);
  EXPECT_FALSE(pool.find("never-seen.com").has_value());
  EXPECT_THROW(pool.name(99), std::out_of_range);
  EXPECT_THROW(pool.name(util::InternPool::kInvalidId), std::out_of_range);
}

TEST(InternPool, SurvivesChunkBoundary) {
  // The id directory is chunked at 4096 entries; cross the boundary and
  // resolve everything back.
  util::InternPool pool(1);
  constexpr std::size_t kCount = 5000;
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(pool.intern("host" + std::to_string(i)), i);
  }
  EXPECT_EQ(pool.size(), kCount);
  EXPECT_EQ(pool.name(4095), "host4095");
  EXPECT_EQ(pool.name(4096), "host4096");
  EXPECT_EQ(pool.name(kCount - 1), "host" + std::to_string(kCount - 1));
}

// --- FlowTable ------------------------------------------------------------

FiveTuple tuple_n(std::uint32_t n) {
  return {0x0A000000u + n, 0x01010101, static_cast<std::uint16_t>(1024 + n),
          443, Transport::kTcp};
}

TEST(FlowTable, InsertFindEraseWithBackwardShift) {
  FlowTable table(8);
  for (std::uint32_t i = 0; i < 6; ++i) {
    std::size_t slot = table.insert(tuple_n(i), i);
    table.entry(slot).buffer.push_back(static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(table.size(), 6U);
  EXPECT_EQ(table.pending(), 6U);
  std::size_t slot = table.find(tuple_n(3));
  ASSERT_NE(slot, FlowTable::kNone);
  table.erase(slot);
  EXPECT_EQ(table.size(), 5U);
  EXPECT_EQ(table.find(tuple_n(3)), FlowTable::kNone);
  // Every other entry must survive the backward shift, data intact.
  for (std::uint32_t i = 0; i < 6; ++i) {
    if (i == 3) continue;
    std::size_t s = table.find(tuple_n(i));
    ASSERT_NE(s, FlowTable::kNone) << "key " << i;
    ASSERT_EQ(table.entry(s).buffer.size(), 1U);
    EXPECT_EQ(table.entry(s).buffer[0], static_cast<std::uint8_t>(i));
  }
}

TEST(FlowTable, RehashPreservesEntriesAndPhases) {
  FlowTable table(4);  // force several rehashes
  for (std::uint32_t i = 0; i < 100; ++i) {
    std::size_t slot = table.insert(tuple_n(i), i);
    if (i % 3 == 0) table.set_phase(slot, FlowPhase::kDoneEmitted);
  }
  EXPECT_EQ(table.size(), 100U);
  EXPECT_EQ(table.pending(), 100U - 34U);
  for (std::uint32_t i = 0; i < 100; ++i) {
    std::size_t s = table.find(tuple_n(i));
    ASSERT_NE(s, FlowTable::kNone) << "key " << i;
    EXPECT_EQ(table.entry(s).phase, i % 3 == 0 ? FlowPhase::kDoneEmitted
                                               : FlowPhase::kPending);
    EXPECT_EQ(table.entry(s).last_seen, static_cast<util::Timestamp>(i));
  }
}

TEST(FlowTable, SetPhaseReleasesBufferAndPendingCount) {
  FlowTable table(8);
  std::size_t slot = table.insert(tuple_n(1), 0);
  table.entry(slot).buffer.assign(512, 0xAB);
  EXPECT_EQ(table.pending(), 1U);
  table.set_phase(slot, FlowPhase::kDoneDead);
  EXPECT_EQ(table.pending(), 0U);
  EXPECT_EQ(table.done(), 1U);
  EXPECT_TRUE(table.entry(slot).buffer.empty());
  EXPECT_EQ(table.entry(slot).buffer.capacity(), 0U);
}

TEST(FlowTable, EvictOnePendingSkipsDoneEntries) {
  FlowTable table(16);
  std::size_t done_slot = table.insert(tuple_n(0), 0);
  table.set_phase(done_slot, FlowPhase::kDoneEmitted);
  table.insert(tuple_n(1), 0);
  table.insert(tuple_n(2), 0);
  EXPECT_TRUE(table.evict_one_pending());
  EXPECT_TRUE(table.evict_one_pending());
  EXPECT_FALSE(table.evict_one_pending());  // only the done entry remains
  EXPECT_EQ(table.size(), 1U);
  EXPECT_NE(table.find(tuple_n(0)), FlowTable::kNone);
}

TEST(FlowTable, EvictIdleSweepsBothPhases) {
  FlowTable table(16);
  table.insert(tuple_n(0), 10);                       // pending, idle
  std::size_t s = table.insert(tuple_n(1), 20);       // done, idle
  table.set_phase(s, FlowPhase::kDoneEmitted);
  table.insert(tuple_n(2), 100);                      // pending, fresh
  auto swept = table.evict_idle(50);
  EXPECT_EQ(swept.pending, 1U);
  EXPECT_EQ(swept.done, 1U);
  EXPECT_EQ(table.size(), 1U);
  EXPECT_NE(table.find(tuple_n(2)), FlowTable::kNone);
}

// --- Observer satellites: idle eviction, DNS dedupe -----------------------

TEST(SniObserver, IdleEvictionAgesOutPendingAndResolvedFlows) {
  SniObserver obs(Vantage::kWifiProvider);
  // A pending stub (1 byte, never completes) and a resolved flow at t=0.
  Packet stub = tls_packet(0x0A000001, 7, "stub.com", 0, 50001);
  stub.payload = {0x16};
  obs.observe(stub);
  ASSERT_TRUE(obs.observe(tls_packet(0x0A000001, 7, "done.com", 0, 50002)));
  EXPECT_EQ(obs.tracked_flows(), 2U);
  EXPECT_EQ(obs.pending_flows(), 1U);

  // 100 sim-seconds later (default idle_timeout 60) a new packet triggers
  // the sweep: both the stub and the resolved entry are aged out.
  ASSERT_TRUE(
      obs.observe(tls_packet(0x0A000001, 7, "later.com", 100, 50003)));
  EXPECT_EQ(obs.stats().idle_evicted, 2U);
  EXPECT_EQ(obs.pending_flows(), 0U);
  EXPECT_EQ(obs.tracked_flows(), 1U);  // just later.com
}

TEST(SniObserver, IdleTimeoutZeroDisablesSweeping) {
  SniObserverOptions opts;
  opts.idle_timeout = 0;
  SniObserver obs(Vantage::kWifiProvider, opts);
  Packet stub = tls_packet(0x0A000001, 7, "stub.com", 0, 50001);
  stub.payload = {0x16};
  obs.observe(stub);
  obs.observe(tls_packet(0x0A000001, 7, "later.com", 1000, 50002));
  EXPECT_EQ(obs.stats().idle_evicted, 0U);
  EXPECT_EQ(obs.tracked_flows(), 2U);
}

TEST(SniObserver, ActiveFlowsSurviveTheSweep) {
  SniObserver obs(Vantage::kWifiProvider);
  // A long-lived resolved flow touched every 30 s stays tracked (its
  // last_seen advances), so later segments keep hitting the done entry
  // instead of being re-parsed as a fresh flow.
  ASSERT_TRUE(obs.observe(tls_packet(0x0A000001, 7, "keep.com", 0, 50001)));
  for (util::Timestamp t = 30; t <= 240; t += 30) {
    Packet seg = tls_packet(0x0A000001, 7, "keep.com", t, 50001);
    seg.payload = {0x17, 0x03, 0x03, 0x00, 0x01, 0x00};
    EXPECT_FALSE(obs.observe(seg).has_value());
  }
  EXPECT_EQ(obs.tracked_flows(), 1U);
  EXPECT_EQ(obs.stats().events, 1U);
}

TEST(DnsObserver, DedupesRepeatedQueriesWithinWindow) {
  DnsObserver obs(Vantage::kWifiProvider);  // default window: 5 s
  EXPECT_EQ(obs.observe(dns_packet(0x0A000001, 7, "x.com", 0)).size(), 1U);
  // Same flow, same qname, inside the window: suppressed.
  EXPECT_TRUE(obs.observe(dns_packet(0x0A000001, 7, "x.com", 3)).empty());
  EXPECT_EQ(obs.stats().deduped, 1U);
  // Beyond the window (measured from the last *emitted* occurrence): the
  // query is intent again.
  EXPECT_EQ(obs.observe(dns_packet(0x0A000001, 7, "x.com", 9)).size(), 1U);
  // A different qname on the same flow is never a duplicate.
  EXPECT_EQ(obs.observe(dns_packet(0x0A000001, 7, "y.com", 9)).size(), 1U);
  // Same qname from a different flow (other src port) is not a duplicate.
  EXPECT_EQ(
      obs.observe(dns_packet(0x0A000001, 7, "x.com", 9, 5454)).size(), 1U);
  EXPECT_EQ(obs.stats().deduped, 1U);
  EXPECT_EQ(obs.stats().events, 4U);
}

TEST(DnsObserver, DedupeWindowZeroDisables) {
  DnsObserverOptions opts;
  opts.dedupe_window = 0;
  DnsObserver obs(Vantage::kWifiProvider, opts);
  EXPECT_EQ(obs.observe(dns_packet(0x0A000001, 7, "x.com", 0)).size(), 1U);
  EXPECT_EQ(obs.observe(dns_packet(0x0A000001, 7, "x.com", 0)).size(), 1U);
  EXPECT_EQ(obs.stats().deduped, 0U);
}

TEST(DnsObserver, DedupeMemoryIsBoundedAndPruned) {
  DnsObserverOptions opts;
  opts.max_dedupe_entries = 8;
  DnsObserver obs(Vantage::kWifiProvider, opts);
  // 32 distinct qnames at widening timestamps: the table must stay near the
  // cap because stale entries are pruned, and nothing is suppressed.
  for (std::uint32_t i = 0; i < 32; ++i) {
    auto events = obs.observe(
        dns_packet(0x0A000001, 7, "q" + std::to_string(i) + ".com",
                   static_cast<util::Timestamp>(i * 10)));
    EXPECT_EQ(events.size(), 1U) << i;
  }
  EXPECT_EQ(obs.stats().deduped, 0U);
  EXPECT_EQ(obs.stats().events, 32U);
}

// --- UserDemux vantage behaviour (satellite: NAT collapse, reorderings) ---

TEST(UserDemux, LandlineNatCollapseInPipeline) {
  // Two devices (distinct MACs) behind one NAT IP: a landline ISP vantage
  // must see one user — including through the sharded pipeline, where the
  // identity key that routes packets is the one ids are assigned from.
  util::InternPool pool;
  std::vector<InternedEvent> got;
  IngestOptions opts;
  opts.shards = 4;
  opts.vantage = Vantage::kLandlineIsp;
  IngestPipeline pipeline(opts, pool,
                          [&](std::span<const InternedEvent> batch) {
                            got.insert(got.end(), batch.begin(), batch.end());
                          });
  pipeline.push(tls_packet(0x0A000001, 111, "x.com", 0, 40001));
  pipeline.push(tls_packet(0x0A000001, 222, "y.com", 1, 40002));
  pipeline.push(tls_packet(0x0A000002, 333, "z.com", 2, 40003));
  pipeline.stop();
  ASSERT_EQ(got.size(), 3U);
  std::map<std::string, std::uint32_t> user_of;
  for (const auto& e : got) user_of[pool.name(e.host_id)] = e.user_id;
  EXPECT_EQ(user_of["x.com"], user_of["y.com"]);  // NAT collapse
  EXPECT_NE(user_of["x.com"], user_of["z.com"]);
  EXPECT_EQ(pipeline.stats().distinct_users, 2U);
}

TEST(UserDemux, GroupingIsStableAcrossPacketReorderings) {
  // Reordering packets may permute which dense id each sender gets, but
  // never how packets group into users.
  std::vector<Packet> packets;
  for (std::uint32_t i = 0; i < 12; ++i) {
    packets.push_back(tls_packet(0x0A000000 + i % 3, 100 + i % 3, "h.com", 0,
                                 static_cast<std::uint16_t>(41000 + i)));
  }
  auto grouping = [](UserDemux& demux, const std::vector<Packet>& order) {
    std::map<std::uint32_t, std::vector<std::uint64_t>> by_user;
    for (const auto& p : order) by_user[demux.user_of(p)].push_back(p.src_mac);
    std::vector<std::vector<std::uint64_t>> groups;
    for (auto& [id, macs] : by_user) {
      std::sort(macs.begin(), macs.end());
      groups.push_back(macs);
    }
    std::sort(groups.begin(), groups.end());
    return groups;
  };
  UserDemux forward_demux(Vantage::kWifiProvider);
  auto forward = grouping(forward_demux, packets);
  std::vector<Packet> reversed(packets.rbegin(), packets.rend());
  UserDemux reversed_demux(Vantage::kWifiProvider);
  EXPECT_EQ(forward, grouping(reversed_demux, reversed));
  // Within one run, ids are stable: re-feeding the same packets changes
  // nothing.
  EXPECT_EQ(forward, grouping(forward_demux, reversed));
  EXPECT_EQ(forward_demux.distinct_users(), 3U);
}

// --- Pipeline identity oracle ---------------------------------------------

std::vector<Packet> mixed_corpus(std::size_t flows, std::size_t users,
                                 std::size_t hosts) {
  std::vector<Packet> packets;
  for (std::size_t i = 0; i < flows; ++i) {
    std::size_t u = (i * 7) % users;
    Packet p = tls_packet(
        0x0A000000 + static_cast<std::uint32_t>(u), 100 + u,
        "svc" + std::to_string(i % hosts) + ".example.com",
        static_cast<util::Timestamp>(i / 50),
        static_cast<std::uint16_t>(20000 + i % 30000),
        0xC0000000 + static_cast<std::uint32_t>(i));
    if (i % 5 == 0) {  // split across two segments
      Packet head = p;
      head.payload.assign(p.payload.begin(), p.payload.begin() + 30);
      Packet tail = p;
      tail.payload.assign(p.payload.begin() + 30, p.payload.end());
      packets.push_back(std::move(head));
      packets.push_back(std::move(tail));
    } else {
      packets.push_back(std::move(p));
    }
  }
  return packets;
}

TEST(IngestPipeline, OneShardOutputBitIdenticalToObserver) {
  auto packets = mixed_corpus(600, 9, 40);

  SniObserver observer(Vantage::kWifiProvider);
  std::vector<HostnameEvent> expected;
  for (const auto& p : packets) {
    if (auto e = observer.observe(p)) expected.push_back(std::move(*e));
  }

  util::InternPool pool;
  std::vector<InternedEvent> got;
  IngestOptions opts;  // shards = 1
  IngestPipeline pipeline(opts, pool,
                          [&](std::span<const InternedEvent> batch) {
                            got.insert(got.end(), batch.begin(), batch.end());
                          });
  pipeline.push(packets);
  pipeline.stop();

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].user_id, expected[i].user_id) << i;
    EXPECT_EQ(got[i].timestamp, expected[i].timestamp) << i;
    ASSERT_NE(got[i].host_id, util::InternPool::kInvalidId) << i;
    EXPECT_EQ(pool.name(got[i].host_id), expected[i].hostname) << i;
  }

  // Stats must agree with the wrapper path too.
  auto stats = pipeline.stats();
  EXPECT_EQ(stats.observer.packets, observer.stats().packets);
  EXPECT_EQ(stats.observer.flows, observer.stats().flows);
  EXPECT_EQ(stats.observer.events, observer.stats().events);
  EXPECT_EQ(stats.observer.not_tls, observer.stats().not_tls);
  EXPECT_EQ(stats.observer.idle_evicted, observer.stats().idle_evicted);
  EXPECT_EQ(stats.distinct_users, observer.demux().distinct_users());
  EXPECT_EQ(stats.pushed, packets.size());
  EXPECT_EQ(stats.delivered, expected.size());
  EXPECT_EQ(stats.dropped, 0U);
}

TEST(IngestPipeline, ShardedPreservesPerUserSubsequences) {
  auto packets = mixed_corpus(800, 16, 60);

  SniObserver observer(Vantage::kWifiProvider);
  std::map<std::uint32_t, std::vector<std::string>> st_seq;
  std::size_t st_events = 0;
  for (const auto& p : packets) {
    if (auto e = observer.observe(p)) {
      st_seq[e->user_id].push_back(std::to_string(e->timestamp) + "|" +
                                   e->hostname);
      ++st_events;
    }
  }

  util::InternPool pool;
  IngestOptions opts;
  opts.shards = 4;
  std::map<std::uint32_t, std::vector<std::string>> mt_seq;
  std::size_t mt_events = 0;
  IngestPipeline pipeline(opts, pool,
                          [&](std::span<const InternedEvent> batch) {
                            for (const auto& e : batch) {
                              mt_seq[e.user_id].push_back(
                                  std::to_string(e.timestamp) + "|" +
                                  pool.name(e.host_id));
                              ++mt_events;
                            }
                          });
  pipeline.push(packets);
  pipeline.stop();

  EXPECT_EQ(mt_events, st_events);
  EXPECT_EQ(pipeline.stats().dropped, 0U);
  EXPECT_EQ(pipeline.stats().distinct_users, st_seq.size());
  // Ids may differ across modes (strided allocation), but the multiset of
  // per-user event sequences must be exactly the legacy one.
  std::vector<std::vector<std::string>> st_groups, mt_groups;
  for (auto& [id, seq] : st_seq) st_groups.push_back(seq);
  for (auto& [id, seq] : mt_seq) mt_groups.push_back(seq);
  std::sort(st_groups.begin(), st_groups.end());
  std::sort(mt_groups.begin(), mt_groups.end());
  EXPECT_EQ(st_groups, mt_groups);
}

TEST(IngestPipeline, CombinedSniAndDnsShareOneUserSpace) {
  util::InternPool pool;
  std::vector<InternedEvent> got;
  IngestOptions opts;
  opts.dns = true;  // sni stays on
  IngestPipeline pipeline(opts, pool,
                          [&](std::span<const InternedEvent> batch) {
                            got.insert(got.end(), batch.begin(), batch.end());
                          });
  // One sender: a DNS lookup then the TLS connection it resolved.
  pipeline.push(dns_packet(0x0A000001, 7, "shop.example.com", 10));
  pipeline.push(tls_packet(0x0A000001, 7, "shop.example.com", 11, 40001));
  pipeline.stop();
  ASSERT_EQ(got.size(), 2U);
  EXPECT_EQ(got[0].user_id, got[1].user_id);
  EXPECT_EQ(pool.name(got[0].host_id), "shop.example.com");
  EXPECT_EQ(pool.name(got[1].host_id), "shop.example.com");
  EXPECT_EQ(pipeline.stats().distinct_users, 1U);
}

TEST(IngestPipeline, StatusLineMentionsShardsAndQueue) {
  util::InternPool pool;
  IngestOptions opts;
  opts.shards = 2;
  IngestPipeline pipeline(opts, pool, [](std::span<const InternedEvent>) {});
  std::string line = pipeline.status();
  EXPECT_NE(line.find("shards=2"), std::string::npos) << line;
  EXPECT_NE(line.find("queue="), std::string::npos) << line;
  EXPECT_NE(line.find("queue_hwm="), std::string::npos) << line;
  EXPECT_NE(line.find("stall_s="), std::string::npos) << line;
  pipeline.stop();
}

TEST(EventRing, TracksHighWatermarkAndStallTime) {
  EventRing ring(8, BackpressurePolicy::kBlock);
  std::vector<InternedEvent> batch(6);
  EXPECT_EQ(ring.push(batch), 0u);
  EXPECT_EQ(ring.high_watermark(), 6u);

  // The high watermark is sticky across drains.
  std::vector<InternedEvent> out;
  ring.drain(out, 6);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.high_watermark(), 6u);
  EXPECT_EQ(ring.stall_seconds(), 0.0);  // never blocked so far

  // Fill the ring, then push against the full ring while a consumer drains
  // after a delay: the blocked push must report its own stall time and the
  // ring must fold it into the cumulative gauge.
  std::vector<InternedEvent> fill(8);
  ring.push(fill);
  EXPECT_EQ(ring.high_watermark(), 8u);
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<InternedEvent> sink;
    ring.drain(sink, 4);
  });
  double stalled = 0.0;
  std::vector<InternedEvent> two(2);
  EXPECT_EQ(ring.push(two, &stalled), 0u);
  consumer.join();
  EXPECT_GT(stalled, 0.0);
  EXPECT_GE(ring.stall_seconds(), stalled);
  ring.close();
}

// --- End-to-end: identical profiles under both ingest modes ---------------

TEST(IngestE2E, ProfilesIdenticalAcrossIngestModes) {
  ontology::HostLabeler labeler(2);
  labeler.set_label("travel-a.com", {1.0F, 0.0F});
  labeler.set_label("sport-a.com", {0.0F, 1.0F});
  profile::ServiceParams params;
  params.sgns.dim = 12;
  params.sgns.epochs = 10;
  params.vocab.min_count = 1;
  params.vocab.subsample_threshold = 0.0;

  // Day-0 training traffic + a day-1 session, as raw packets.
  std::vector<Packet> day0, day1;
  std::uint16_t port = 30000;
  for (int rep = 0; rep < 50; ++rep) {
    util::Timestamp base = rep * 10 * util::kMinute;
    day0.push_back(tls_packet(0x0A000001, 11, "travel-a.com", base + 1, ++port));
    day0.push_back(
        tls_packet(0x0A000001, 11, "travel-api.net", base + 2, ++port));
    day0.push_back(tls_packet(0x0A000002, 22, "sport-a.com", base + 1, ++port));
    day0.push_back(
        tls_packet(0x0A000002, 22, "sport-api.net", base + 2, ++port));
  }
  util::Timestamp now = util::kDay + 5 * util::kMinute;
  day1.push_back(
      tls_packet(0x0A000001, 11, "travel-api.net", now - util::kMinute, ++port));
  day1.push_back(
      tls_packet(0x0A000002, 22, "sport-api.net", now - util::kMinute, ++port));

  // Mode A: single-threaded observer -> owning events -> ingest().
  profile::ProfilingService service_st(labeler, nullptr, params);
  SniObserver observer(Vantage::kWifiProvider);
  service_st.ingest(observer.observe_all(day0));
  ASSERT_TRUE(service_st.retrain(0));
  service_st.ingest(observer.observe_all(day1));

  // Mode B: ingest pipeline -> interned batches -> ingest_interned().
  profile::ProfilingService service_mt(labeler, nullptr, params);
  util::InternPool pool;
  IngestOptions opts;  // 1 shard: ids match mode A exactly
  IngestPipeline pipeline(opts, pool,
                          [&](std::span<const InternedEvent> batch) {
                            service_mt.ingest_interned(batch, pool);
                          });
  pipeline.push(day0);
  pipeline.flush();
  ASSERT_TRUE(service_mt.retrain(0));
  pipeline.push(day1);
  pipeline.stop();

  // Same users, same models, same profiles — float for float.
  for (std::uint32_t user : {0U, 1U}) {
    auto a = service_st.profile_user(user, now);
    auto b = service_mt.profile_user(user, now);
    ASSERT_EQ(a.categories.size(), b.categories.size());
    for (std::size_t c = 0; c < a.categories.size(); ++c) {
      EXPECT_EQ(a.categories[c], b.categories[c]) << "user " << user
                                                  << " cat " << c;
    }
  }
}

// --- Concurrency suite (runs under TSan via the sanitizer_smoke ctest) ----

TEST(IngestConcurrency, InternPoolConcurrentInternsAgree) {
  util::InternPool pool(4);
  constexpr int kThreads = 4;
  constexpr int kNames = 128;
  constexpr int kReps = 500;
  std::vector<std::vector<util::InternPool::Id>> seen(
      kThreads, std::vector<util::InternPool::Id>(kNames));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        for (int n = 0; n < kNames; ++n) {
          std::string name = "host" + std::to_string(n) + ".example.com";
          util::InternPool::Id id = pool.intern(name);
          // Read back through the lock-free directory while other threads
          // keep interning.
          ASSERT_EQ(pool.name(id), name);
          seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(n)] = id;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.size(), static_cast<std::size_t>(kNames));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]) << "thread " << t;
  }
}

TEST(IngestConcurrency, ShardedPipelineDeliversEverythingLossFree) {
  auto packets = mixed_corpus(1500, 24, 80);
  util::InternPool pool;
  std::atomic<std::uint64_t> delivered{0};
  IngestOptions opts;
  opts.shards = 4;
  opts.batch_size = 64;
  opts.ring_capacity = 512;
  IngestPipeline pipeline(opts, pool,
                          [&](std::span<const InternedEvent> batch) {
                            delivered.fetch_add(batch.size());
                          });
  // Exercise the concurrent read paths while the workers run.
  for (std::size_t i = 0; i < packets.size(); ++i) {
    pipeline.push(packets[i]);
    if (i % 256 == 0) {
      (void)pipeline.queue_depth();
      (void)pipeline.stats();
      (void)pipeline.status();
    }
  }
  pipeline.flush();
  auto stats = pipeline.stats();
  pipeline.stop();
  EXPECT_EQ(stats.dropped, 0U);
  EXPECT_EQ(stats.delivered, delivered.load());
  EXPECT_EQ(stats.observer.events, delivered.load());
  EXPECT_EQ(stats.pushed, packets.size());
  // Events flowed through the ring, so its occupancy gauge moved.
  EXPECT_GE(stats.queue_hwm, 1u);
}

TEST(IngestConcurrency, DropOldestBoundsTheRingAndCountsLoss) {
  auto packets = mixed_corpus(2000, 8, 16);
  util::InternPool pool;
  std::atomic<std::uint64_t> delivered{0};
  IngestOptions opts;
  opts.shards = 2;
  opts.batch_size = 32;
  opts.ring_capacity = 64;
  opts.backpressure = BackpressurePolicy::kDropOldest;
  IngestPipeline pipeline(opts, pool,
                          [&](std::span<const InternedEvent> batch) {
                            delivered.fetch_add(batch.size());
                            // A deliberately slow sink forces the ring full.
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(1));
                          });
  pipeline.push(packets);
  pipeline.flush();
  auto stats = pipeline.stats();
  pipeline.stop();
  // Under drop-oldest nothing blocks, and the accounting is airtight:
  // every produced event is either delivered or counted dropped.
  EXPECT_EQ(stats.delivered + stats.dropped, stats.observer.events);
  EXPECT_EQ(stats.delivered, delivered.load());
  EXPECT_GT(stats.dropped, 0U);
}

}  // namespace
}  // namespace netobs::net
