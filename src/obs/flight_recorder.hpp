// FlightRecorder: deterministic 1-in-N provenance tracing for the sharded
// ingest pipeline.
//
// A sampled event is stamped at every stage it crosses —
//
//   kParse    packet parsed, hostname extracted (shard worker)
//   kEnqueue  offered to the EventRing (shard worker, pre-push)
//   kDequeue  drained from the ring (consumer thread)
//   kSession  folded into the session store (consumer thread)
//   kProfile  the user's next profile/kNN query (any thread)
//
// — and the recorder publishes per-hop latencies plus end-to-end
// packet→session and packet→profile staleness through P² quantile gauges
// (obs/stats_stream.hpp):
//
//   netobs_flight_hop_seconds{hop="parse_to_enqueue"|"enqueue_to_dequeue"
//                             |"dequeue_to_session"}
//   netobs_flight_staleness_seconds{stage="session"|"profile"}
//
// Sampling is a pure function of (seed, event timestamp, hostname bytes) —
// deliberately NOT of user_id/host_id, which depend on the shard layout
// (strided id allocation, racing interns). The same capture therefore
// samples the same set of events at any shard count, which is what makes
// cross-config traces comparable (and is pinned by a test).
//
// Hot-path budget: the non-sampled cost is one short hash at parse time and
// one integer-hash + one or two atomic loads per downstream probe — the
// bench gate holds the whole recorder at 1/1024 under 2% of ingest
// throughput. In-flight records live in a small fixed open-addressed table
// of atomic keys; pipeline FIFO order (worker → ring mutex → consumer)
// provides the happens-before between stage stamps on one record.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stats_stream.hpp"
#include "util/rng.hpp"

namespace netobs::obs {

inline constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

enum class FlightHop : std::uint8_t {
  kParse = 0,
  kEnqueue = 1,
  kDequeue = 2,
  kSession = 3,
  kProfile = 4,
};

struct FlightRecorderOptions {
  /// Sample one event in this many (deterministically); 0 disables, 1
  /// traces everything (tests).
  std::uint64_t sample_every = 1024;
  std::uint64_t seed = 2021;
  /// In-flight slot table size (rounded up to a power of two). Records that
  /// find no free slot are counted overflowed, never blocked on.
  std::size_t max_in_flight = 256;
  /// Cap on records parked between session update and the user's next
  /// profile query (one per user).
  std::size_t max_awaiting_profile = 4096;
  /// Test hook: keep a log of sampled (timestamp, hostname) pairs so suites
  /// can compare sampled sets across shard counts.
  bool keep_sample_log = false;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The deterministic, shard-layout-invariant sampling decision. Inline:
  /// it runs for every ingested event once a recorder is attached, and the
  /// ≤2% pps budget (check_bench_regression) does not cover a cross-TU
  /// call. Hashes the first/last 8 hostname bytes plus the length —
  /// constant time, enough entropy on real hostnames — and never
  /// user_id/host_id (those are shard-layout-dependent).
  bool sampled(std::int64_t timestamp, std::string_view hostname) const {
    std::uint64_t every = options_.sample_every;
    if (every <= 1) return every == 1;
    std::uint64_t head = 0;
    std::uint64_t tail = 0;
    std::size_t n = hostname.size();
    if (n != 0) {
      std::memcpy(&head, hostname.data(), n < 8 ? n : 8);
      if (n > 8) std::memcpy(&tail, hostname.data() + (n - 8), 8);
    }
    std::uint64_t h = util::mix64(options_.seed + head * kGolden +
                                  (tail + n) * 0xff51afd7ed558ccdULL +
                                  static_cast<std::uint64_t>(timestamp));
    if ((every & (every - 1)) == 0) return (h & (every - 1)) == 0;
    return h % every == 0;
  }

  /// Identity of one event downstream of parse (collision-tolerant; never
  /// zero).
  static std::uint64_t event_key(std::uint32_t user_id, std::uint32_t host_id,
                                 std::int64_t timestamp);

  /// Opens an in-flight record with its kParse stamp. Call only for events
  /// sampled() said yes to; `hostname` feeds the optional sample log.
  void record_parse(std::uint32_t user_id, std::uint32_t host_id,
                    std::int64_t timestamp, std::uint32_t shard,
                    std::string_view hostname);

  /// Batch stamp by precomputed keys — the shard worker collected them at
  /// parse time, so the enqueue stage costs nothing per unsampled event.
  void stamp_keys(FlightHop hop, std::span<const std::uint64_t> keys);

  /// Per-event probe for the consumer side (kDequeue). Near-free when the
  /// event is not in flight.
  void stamp(FlightHop hop, std::uint32_t user_id, std::uint32_t host_id,
             std::int64_t timestamp);

  /// kSession: closes the in-flight record — publishes the hop and
  /// packet→session staleness quantiles and parks the parse stamp under
  /// `user_id` for the profile stage.
  void complete_session(std::uint32_t user_id, std::uint32_t host_id,
                        std::int64_t timestamp);

  /// kProfile: if a completed record is parked for `user_id`, publishes the
  /// end-to-end packet→profile staleness and retires it.
  void record_profile(std::uint32_t user_id);

  // Lifetime totals (internal atomics — valid with the registry disabled).
  std::uint64_t sampled_count() const {
    return sampled_.load(std::memory_order_relaxed);
  }
  std::uint64_t completed_count() const {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t overflow_count() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  std::uint64_t profiled_count() const {
    return profiled_.load(std::memory_order_relaxed);
  }
  std::uint64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  const FlightRecorderOptions& options() const { return options_; }

  /// Sampled (timestamp, hostname) pairs when keep_sample_log is on.
  std::vector<std::pair<std::int64_t, std::string>> sample_log() const;

  /// Key/value lines for /statusz status providers.
  std::vector<std::pair<std::string, std::string>> status() const;

 private:
  // Payload fields are relaxed atomics: pipeline FIFO order gives the
  // happens-before between a record's stage stamps, but a table overflow
  // can steal a slot mid-record — the stolen record's stamps then race
  // benignly, and atomics keep that defined (and TSan-clean).
  struct Slot {
    std::atomic<std::uint64_t> key{0};  ///< 0 free, kReserved mid-claim
    std::atomic<std::uint32_t> user_id{0};
    std::atomic<std::uint32_t> shard{0};
    std::atomic<std::int64_t> timestamp{0};
    std::atomic<double> stamps[4];  ///< kParse..kSession, recorder seconds
  };

  static constexpr std::uint64_t kReserved = ~std::uint64_t{0};
  static constexpr int kMaxProbes = 8;

  double now_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }
  Slot* find_slot(std::uint64_t key);
  void stamp_key(FlightHop hop, std::uint64_t key, double now);

  FlightRecorderOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t slot_mask_ = 0;
  std::unique_ptr<Slot[]> slots_;

  std::atomic<std::uint64_t> sampled_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> profiled_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> awaiting_{0};

  // Session→profile hand-off: rare path (one entry per sampled event that
  // reached the store), mutex is fine.
  std::mutex awaiting_mutex_;
  std::unordered_map<std::uint32_t, double> awaiting_profile_;

  mutable std::mutex log_mutex_;
  std::vector<std::pair<std::int64_t, std::string>> log_;

  // Published quantiles (P² gauges on the global registry).
  QuantileGauges hop_parse_enqueue_;
  QuantileGauges hop_enqueue_dequeue_;
  QuantileGauges hop_dequeue_session_;
  QuantileGauges staleness_session_;
  QuantileGauges staleness_profile_;
};

}  // namespace netobs::obs
