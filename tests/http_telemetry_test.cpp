// End-to-end tests for the embedded telemetry endpoint (obs/http_server):
// router-level checks through HttpServer::handle() plus a real-socket smoke
// test that scrapes a live server on an ephemeral port with a hand-rolled
// HTTP/1.1 GET — no external tools, so it runs anywhere ctest does.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_stream.hpp"
#include "obs/trace.hpp"

namespace netobs::obs {
namespace {

struct HttpReply {
  int status = 0;
  std::string head;
  std::string body;
};

/// Minimal blocking HTTP GET against 127.0.0.1:`port` using raw sockets.
HttpReply http_get(std::uint16_t port, const std::string& path) {
  HttpReply reply;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  std::string request = "GET " + path +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                        "Connection: close\r\n\r\n";
  const char* p = request.data();
  std::size_t remaining = request.size();
  while (remaining > 0) {
    ssize_t n = ::send(fd, p, remaining, 0);
    if (n <= 0) break;
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  auto split = raw.find("\r\n\r\n");
  if (split == std::string::npos) return reply;
  reply.head = raw.substr(0, split);
  reply.body = raw.substr(split + 4);
  if (reply.head.rfind("HTTP/1.1 ", 0) == 0) {
    reply.status = std::atoi(reply.head.c_str() + 9);
  }
  return reply;
}

bool balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

// ------------------------------------------------------------ router level

TEST(HttpTelemetry, RouterServesIndexAndRejectsUnknown) {
  MetricsRegistry reg;
  HttpServer server(HttpServerOptions(), &reg);
  auto index = server.handle("GET", "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  EXPECT_NE(index.body.find("/healthz"), std::string::npos);

  EXPECT_EQ(server.handle("GET", "/nope").status, 404);
  EXPECT_EQ(server.handle("POST", "/metrics").status, 405);
}

TEST(HttpTelemetry, HealthzFlipsBetweenOkAndFail) {
  MetricsRegistry reg;
  HttpServer server(HttpServerOptions(), &reg);
  server.health().set_status("model", true, "trained");
  auto ok = server.handle("GET", "/healthz");
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("model"), std::string::npos);

  server.health().set_status("model", false, "retraining");
  auto fail = server.handle("GET", "/healthz");
  EXPECT_EQ(fail.status, 503);
  EXPECT_NE(fail.body.find("retraining"), std::string::npos);

  server.health().set_status("model", true);
  EXPECT_EQ(server.handle("GET", "/healthz").status, 200);
}

TEST(HttpTelemetry, HealthzCallbackExceptionCountsAsFailure) {
  MetricsRegistry reg;
  HttpServer server(HttpServerOptions(), &reg);
  server.health().register_check("throwing", []() -> HealthResult {
    throw std::runtime_error("backend gone");
  });
  auto reply = server.handle("GET", "/healthz");
  EXPECT_EQ(reply.status, 503);
  EXPECT_NE(reply.body.find("backend gone"), std::string::npos);
}

TEST(HttpTelemetry, StatuszCarriesCallerInfo) {
  MetricsRegistry reg;
  HttpServerOptions options;
  options.status_info = {{"simd_tier", "avx2"}, {"users", "100"}};
  HttpServer server(options, &reg);
  auto reply = server.handle("GET", "/statusz");
  EXPECT_EQ(reply.status, 200);
  EXPECT_NE(reply.body.find("simd_tier"), std::string::npos);
  EXPECT_NE(reply.body.find("avx2"), std::string::npos);
  EXPECT_NE(reply.body.find("users"), std::string::npos);
}

TEST(HttpTelemetry, StatusProvidersRenderLiveRows) {
  MetricsRegistry reg;
  HttpServerOptions options;
  options.status_info = {{"static_key", "static_value"}};
  HttpServer server(options, &reg);
  int backend_gen = 0;
  server.add_status_provider(
      [&backend_gen]() -> std::vector<std::pair<std::string, std::string>> {
        return {{"knn_backend", backend_gen == 0 ? "exact" : "ivf"},
                {"knn_nlists", "686"}};
      });
  auto reply = server.handle("GET", "/statusz");
  EXPECT_EQ(reply.status, 200);
  EXPECT_NE(reply.body.find("static_key"), std::string::npos);
  EXPECT_NE(reply.body.find("exact"), std::string::npos);
  EXPECT_NE(reply.body.find("knn_nlists"), std::string::npos);

  // Providers are re-invoked per scrape: a backend swap (e.g. a retrain
  // switching exact -> ivf) shows up without re-registering anything.
  backend_gen = 1;
  reply = server.handle("GET", "/statusz");
  EXPECT_NE(reply.body.find("ivf"), std::string::npos) << reply.body;

  // A throwing provider degrades to an error row, never a dead page.
  server.add_status_provider(
      []() -> std::vector<std::pair<std::string, std::string>> {
        throw std::runtime_error("backend gone");
      });
  reply = server.handle("GET", "/statusz");
  EXPECT_EQ(reply.status, 200);
  EXPECT_NE(reply.body.find("status provider failed"), std::string::npos)
      << reply.body;
  EXPECT_NE(reply.body.find("backend gone"), std::string::npos);
}

TEST(HttpTelemetry, CollectorsRunBeforeMetricsRender) {
  MetricsRegistry reg;
  Gauge& depth = reg.gauge("netobs_test_queue_depth", "help");
  HttpServer server(HttpServerOptions(), &reg);
  server.add_collector([&depth] { depth.set(17.0); });
  auto reply = server.handle("GET", "/metrics");
  EXPECT_EQ(reply.status, 200);
  EXPECT_NE(reply.body.find("netobs_test_queue_depth 17"), std::string::npos)
      << reply.body;
}

// ------------------------------------------------------- live socket smoke

TEST(HttpTelemetry, ScrapeOverRealSocket) {
  MetricsRegistry reg;
  reg.counter("netobs_test_scrapes_total", "help").inc(3);
  RateGauge rate(reg, "netobs_test_packets_per_second",
                 "Synthetic packet rate", {10.0});
  QuantileGauges lat(reg, "netobs_test_latency_seconds", "Synthetic latency",
                     {0.5, 0.99});
  for (int i = 0; i < 200; ++i) rate.record();
  for (int i = 1; i <= 50; ++i) lat.observe(i * 0.002);

  HttpServerOptions options;
  options.port = 0;  // ephemeral: never collides with a busy CI box
  HttpServer server(options, &reg);
  std::uint16_t port = server.start();
  ASSERT_GT(port, 0);
  ASSERT_TRUE(server.running());

  // /metrics carries the counter, the sliding-window rate gauge and the
  // streaming quantile gauge (StatsHub is flushed per scrape).
  auto metrics = http_get(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.head.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics.body.find("netobs_test_scrapes_total 3"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(
      metrics.body.find("netobs_test_packets_per_second{window=\"10s\"}"),
      std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("netobs_test_latency_seconds{quantile=\"0.99\"}"),
            std::string::npos)
      << metrics.body;

  auto json = http_get(port, "/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_NE(json.head.find("application/json"), std::string::npos);
  EXPECT_TRUE(balanced(json.body));
  EXPECT_NE(json.body.find("netobs_test_scrapes_total"), std::string::npos);

  // Health flips 200 -> 503 -> 200 as the pipeline reports readiness.
  server.health().set_status("model", true, "trained");
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
  server.health().set_status("model", false, "day rollover");
  auto unhealthy = http_get(port, "/healthz");
  EXPECT_EQ(unhealthy.status, 503);
  EXPECT_NE(unhealthy.body.find("day rollover"), std::string::npos);
  server.health().set_status("model", true);
  EXPECT_EQ(http_get(port, "/healthz").status, 200);

  // Tracing off: /tracez explains how to turn it on.
  auto tracez_off = http_get(port, "/tracez");
  EXPECT_EQ(tracez_off.status, 200);
  EXPECT_NE(tracez_off.body.find("tracing disabled"), std::string::npos);

  reg.enable_tracing(64);
  SpanRecord rec;
  rec.name = "scrape-span";
  rec.id = 1;
  rec.duration_seconds = 0.002;
  reg.trace_buffer()->push(rec);
  auto tracez = http_get(port, "/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("trace buffer: 1 spans"), std::string::npos);
  EXPECT_NE(tracez.body.find("scrape-span"), std::string::npos);

  auto statusz = http_get(port, "/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("uptime"), std::string::npos);

  EXPECT_EQ(http_get(port, "/missing").status, 404);
  EXPECT_GE(server.requests_served(), 8u);

  server.stop();
  EXPECT_FALSE(server.running());
  // stop() is idempotent and start() works again after it.
  server.stop();
}

}  // namespace
}  // namespace netobs::obs
