#include "crypto/aes.hpp"

#include <cstring>

namespace netobs::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint32_t sub_word(std::uint32_t w) {
  return (static_cast<std::uint32_t>(kSbox[(w >> 24) & 0xFF]) << 24) |
         (static_cast<std::uint32_t>(kSbox[(w >> 16) & 0xFF]) << 16) |
         (static_cast<std::uint32_t>(kSbox[(w >> 8) & 0xFF]) << 8) |
         kSbox[w & 0xFF];
}

constexpr std::uint32_t rot_word(std::uint32_t w) {
  return (w << 8) | (w >> 24);
}

}  // namespace

Aes128::Aes128(const AesKey& key) {
  for (int i = 0; i < 4; ++i) {
    round_keys_[i] = (static_cast<std::uint32_t>(key[4 * i]) << 24) |
                     (static_cast<std::uint32_t>(key[4 * i + 1]) << 16) |
                     (static_cast<std::uint32_t>(key[4 * i + 2]) << 8) |
                     key[4 * i + 3];
  }
  std::uint32_t rcon = 0x01000000;
  for (int i = 4; i < 44; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % 4 == 0) {
      temp = sub_word(rot_word(temp)) ^ rcon;
      rcon = static_cast<std::uint32_t>(xtime(
                 static_cast<std::uint8_t>(rcon >> 24)))
             << 24;
    }
    round_keys_[i] = round_keys_[i - 4] ^ temp;
  }
}

AesBlock Aes128::encrypt_block(const AesBlock& plaintext) const {
  std::uint8_t s[16];
  std::memcpy(s, plaintext.data(), 16);

  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      std::uint32_t w = round_keys_[static_cast<std::size_t>(round * 4 + c)];
      s[4 * c] ^= static_cast<std::uint8_t>(w >> 24);
      s[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
      s[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
      s[4 * c + 3] ^= static_cast<std::uint8_t>(w);
    }
  };
  auto sub_bytes = [&] {
    for (auto& b : s) b = kSbox[b];
  };
  auto shift_rows = [&] {
    // State is column-major: s[4c + r].
    std::uint8_t t = s[1];
    s[1] = s[5];
    s[5] = s[9];
    s[9] = s[13];
    s[13] = t;
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    t = s[15];
    s[15] = s[11];
    s[11] = s[7];
    s[7] = s[3];
    s[3] = t;
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t a0 = s[4 * c];
      std::uint8_t a1 = s[4 * c + 1];
      std::uint8_t a2 = s[4 * c + 2];
      std::uint8_t a3 = s[4 * c + 3];
      std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
      s[4 * c] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(a0 ^ a1));
      s[4 * c + 1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(a1 ^ a2));
      s[4 * c + 2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(a2 ^ a3));
      s[4 * c + 3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(a3 ^ a0));
    }
  };

  add_round_key(0);
  for (int round = 1; round < 10; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);

  AesBlock out;
  std::memcpy(out.data(), s, 16);
  return out;
}

Aes128Gcm::Aes128Gcm(const AesKey& key) : cipher_(key) {
  AesBlock zero{};
  h_ = cipher_.encrypt_block(zero);
}

namespace {

/// GF(2^128) multiplication per SP 800-38D (bit-reflected convention).
AesBlock gf_mul(const AesBlock& x, const AesBlock& y) {
  AesBlock z{};
  AesBlock v = y;
  for (int i = 0; i < 128; ++i) {
    int byte = i / 8;
    int bit = 7 - (i % 8);
    if ((x[static_cast<std::size_t>(byte)] >> bit) & 1) {
      for (int j = 0; j < 16; ++j) z[static_cast<std::size_t>(j)] ^= v[static_cast<std::size_t>(j)];
    }
    bool lsb = (v[15] & 1) != 0;
    for (int j = 15; j > 0; --j) {
      v[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(
          (v[static_cast<std::size_t>(j)] >> 1) |
          (v[static_cast<std::size_t>(j - 1)] << 7));
    }
    v[0] >>= 1;
    if (lsb) v[0] ^= 0xe1;
  }
  return z;
}

void inc32(AesBlock& counter) {
  for (int i = 15; i >= 12; --i) {
    if (++counter[static_cast<std::size_t>(i)] != 0) break;
  }
}

}  // namespace

AesBlock Aes128Gcm::ghash(std::span<const std::uint8_t> aad,
                          std::span<const std::uint8_t> ciphertext) const {
  AesBlock y{};
  auto absorb = [&](std::span<const std::uint8_t> data) {
    for (std::size_t off = 0; off < data.size(); off += 16) {
      AesBlock block{};
      std::size_t take = std::min<std::size_t>(16, data.size() - off);
      std::memcpy(block.data(), data.data() + off, take);
      for (int i = 0; i < 16; ++i) {
        y[static_cast<std::size_t>(i)] ^= block[static_cast<std::size_t>(i)];
      }
      y = gf_mul(y, h_);
    }
  };
  absorb(aad);
  absorb(ciphertext);
  AesBlock lengths{};
  std::uint64_t aad_bits = aad.size() * 8;
  std::uint64_t ct_bits = ciphertext.size() * 8;
  for (int i = 0; i < 8; ++i) {
    lengths[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(aad_bits >> (56 - 8 * i));
    lengths[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(ct_bits >> (56 - 8 * i));
  }
  for (int i = 0; i < 16; ++i) {
    y[static_cast<std::size_t>(i)] ^= lengths[static_cast<std::size_t>(i)];
  }
  return gf_mul(y, h_);
}

void Aes128Gcm::ctr_xor(const AesBlock& initial_counter,
                        std::span<const std::uint8_t> in,
                        std::span<std::uint8_t> out) const {
  AesBlock counter = initial_counter;
  for (std::size_t off = 0; off < in.size(); off += 16) {
    inc32(counter);
    AesBlock keystream = cipher_.encrypt_block(counter);
    std::size_t take = std::min<std::size_t>(16, in.size() - off);
    for (std::size_t i = 0; i < take; ++i) {
      out[off + i] = in[off + i] ^ keystream[i];
    }
  }
}

std::vector<std::uint8_t> Aes128Gcm::seal(
    const Nonce& nonce, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> plaintext) const {
  AesBlock j0{};
  std::memcpy(j0.data(), nonce.data(), kNonceSize);
  j0[15] = 1;

  std::vector<std::uint8_t> out(plaintext.size() + kTagSize);
  ctr_xor(j0, plaintext, std::span(out.data(), plaintext.size()));

  AesBlock s = ghash(aad, std::span(out.data(), plaintext.size()));
  AesBlock ek_j0 = cipher_.encrypt_block(j0);
  for (std::size_t i = 0; i < kTagSize; ++i) {
    out[plaintext.size() + i] = s[i] ^ ek_j0[i];
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> Aes128Gcm::open(
    const Nonce& nonce, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> sealed) const {
  if (sealed.size() < kTagSize) return std::nullopt;
  std::size_t ct_len = sealed.size() - kTagSize;
  auto ciphertext = sealed.subspan(0, ct_len);

  AesBlock j0{};
  std::memcpy(j0.data(), nonce.data(), kNonceSize);
  j0[15] = 1;

  AesBlock s = ghash(aad, ciphertext);
  AesBlock ek_j0 = cipher_.encrypt_block(j0);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kTagSize; ++i) {
    diff |= static_cast<std::uint8_t>((s[i] ^ ek_j0[i]) ^ sealed[ct_len + i]);
  }
  if (diff != 0) return std::nullopt;

  std::vector<std::uint8_t> plaintext(ct_len);
  ctr_xor(j0, ciphertext, plaintext);
  return plaintext;
}

}  // namespace netobs::crypto
