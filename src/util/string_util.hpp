// String and hostname helpers.
//
// Hostname handling follows what the paper needs: validation of DNS names
// (for the TLS SNI codec), and reduction of a full hostname to its
// second-level registrable domain (Section 6.2 collapses e.g.
// "mail.google.com" -> "google.com" and "ds-aksb-a.akamaihd.net" ->
// "akamaihd.net"). A miniature public-suffix list covers the multi-label
// ccTLD registries that dominate the paper's (Spanish/LatAm) dataset, e.g.
// "blogspot.com.es" -> registrable "blogspot.com.es"? No: "com.es" is the
// suffix, so the registrable domain is "blogspot.com.es".
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace netobs::util {

std::vector<std::string> split(std::string_view s, char delim);

/// Splits and drops empty tokens.
std::vector<std::string> split_nonempty(std::string_view s, char delim);

std::string to_lower(std::string_view s);

std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// RFC 1035-ish validation: 1-253 chars, labels of 1-63 [a-z0-9-] chars not
/// starting/ending with '-', at least one dot, no empty labels. The check is
/// intentionally case-insensitive; callers should canonicalise with
/// to_lower() first for storage.
bool is_valid_hostname(std::string_view host);

/// True if `host` equals `domain` or is a subdomain of it
/// ("a.b.example.com" matches "example.com" but not "ample.com").
bool host_matches_domain(std::string_view host, std::string_view domain);

/// Returns the registrable (second-level) domain of a hostname, consulting a
/// built-in mini public-suffix list ("com.es", "co.uk", "com.ve", ...).
/// Returns the input unchanged when it has fewer labels than needed.
std::string second_level_domain(std::string_view host);

/// Number of dot-separated labels.
std::size_t label_count(std::string_view host);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace netobs::util
